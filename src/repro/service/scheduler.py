"""Sharding scheduler: one thread, a worker pool, a dedupe ledger.

The scheduler turns accepted jobs into executed points:

* **registration** — at admission every resolved point is checked
  against the result cache (hit → the job is filled immediately) and
  against the *in-flight ledger*: a point whose fingerprint some other
  unfinished job already owns becomes a **follower** of that execution
  instead of a second copy of the work.  Only genuinely new points
  enter the work deque.
* **chunking** — the scheduler thread drains the work deque in FIFO
  chunks of up to ``batch`` points sharing one :class:`JobSpec` (points
  of one job are contiguous, so chunks are per-job slices), keeping
  cancellation and progress streaming responsive even for huge jobs.
* **execution** — each chunk runs through the event-driven
  :func:`repro.runtime.executor.run_points` loop, sharded over
  ``workers`` processes (``workers == 1`` with no timeout runs inline —
  zero fork overhead for cheap points).  Under an installed supervisor
  the chunk gets the same MAPE pass batch sweeps get
  (:func:`repro.analysis.sweep._supervise`): engine faults trip
  breakers, suspect points re-run once on the reference engines.
* **fan-out** — a completed point's row is normalized into the cache
  and fanned out to *every* follower job; a failure fans out as a
  per-job :class:`~repro.analysis.sweep.PointFailure` (and is never
  cached, mirroring the checkpoint rule).

Graceful degradation: the moment the supervisor reports a tripped
breaker or a spent ``deadline_s`` budget, the scheduler latches its
``degraded`` flag — the admission path starts rejecting new jobs with
backpressure — but keeps draining accepted work (on the reference
engines the supervisor pinned).  Accepted jobs are never dropped.

With a :class:`~repro.service.persistence.ServicePersistence` attached
the loop is also the journal's execution writer: each chunk is journaled
``chunk-dispatched`` before it runs, each executed row hits the durable
result store *before* its ``point-done`` record, and jobs reaching
``done``/``failed`` get a ``completed`` record — the write ordering the
crash-recovery contract (see :mod:`repro.service.persistence`) rests on.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..analysis.sweep import _merge_row, _run_grid_point, _supervise
from ..errors import CheckpointError, ConfigurationError
from ..runtime import supervisor as supervisor_module
from ..runtime import trace
from ..runtime.executor import PointTask, run_points
from .cache import MISS, ResultCache
from .jobs import DONE, FAILED, Job, JobSpec

__all__ = ["Scheduler"]


@dataclass
class _WorkItem:
    """One unique point awaiting execution (first-requesting job's spec)."""

    fingerprint: str
    params: dict
    seed: object
    spec: JobSpec


class Scheduler:
    """Owns the work deque, the in-flight ledger, and the loop thread."""

    def __init__(
        self,
        cache: ResultCache,
        *,
        workers: int = 1,
        batch: int = 256,
        tracer: "trace.Tracer | trace.NullTracer | None" = None,
        persistence=None,
    ):
        if workers < 1 and workers != -1:
            raise ConfigurationError(
                f"workers must be >= 1 or -1 (all cores), got {workers}"
            )
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        self.cache = cache
        self.persistence = persistence  # ServicePersistence | None
        self.workers = workers
        self.batch = batch
        self.degraded = False  # latched on first supervisor degradation
        self._tr = tracer if tracer is not None else trace.current()
        self._cond = threading.Condition()
        self._work: "deque[_WorkItem]" = deque()
        # fingerprint -> [(job, point index), ...]; list[0] registered it
        self._wanted: dict[str, list[tuple[Job, int]]] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop the loop promptly (drain by waiting on jobs *first*)."""
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # -- registration (API thread) -----------------------------------------

    def register(self, job: Job) -> dict:
        """Resolve a freshly admitted job against cache and in-flight work.

        Cache hits fill the job immediately; fingerprints already owned
        by an unfinished execution attach the job as a follower; the
        rest become new work items.  Returns the split for telemetry.
        """
        hits = followers = fresh = 0
        with self._cond:
            for point in job.points:
                row = self.cache.get(point.fingerprint)
                if row is not MISS:
                    job.fill(point.index, row, source="cache")
                    hits += 1
                    continue
                wanted = self._wanted.get(point.fingerprint)
                if wanted:
                    wanted.append((job, point.index))
                    self._tr.count("service.points.deduped")
                    followers += 1
                    continue
                self._wanted[point.fingerprint] = [(job, point.index)]
                self._work.append(
                    _WorkItem(
                        fingerprint=point.fingerprint,
                        params=point.params,
                        seed=point.seed,
                        spec=job.spec,
                    )
                )
                fresh += 1
            if fresh:
                self._cond.notify_all()
        return {"cached": hits, "deduped": followers, "fresh": fresh}

    def drop_followers(self, job: Job) -> None:
        """Detach a cancelled job from every point it was waiting on.

        Work items left with no followers are skipped (and counted)
        when the chunk builder reaches them; points other jobs still
        want keep executing for those jobs.
        """
        with self._cond:
            for entries in self._wanted.values():
                entries[:] = [(j, i) for j, i in entries if j is not job]

    def backlog(self) -> int:
        with self._cond:
            return len(self._work)

    # -- the loop ----------------------------------------------------------

    def _loop(self) -> None:
        while True:
            chunk = self._next_chunk()
            if chunk is None:
                return
            spec, items = chunk
            self._run_chunk(spec, items)

    def _next_chunk(self) -> "tuple[JobSpec, list[_WorkItem]] | None":
        """Up to ``batch`` head-of-queue items sharing one spec."""
        with self._cond:
            while True:
                if self._stop.is_set():
                    return None
                items: list[_WorkItem] = []
                spec: Optional[JobSpec] = None
                while self._work and len(items) < self.batch:
                    item = self._work[0]
                    if not self._wanted.get(item.fingerprint):
                        # every requester cancelled before execution
                        self._work.popleft()
                        self._wanted.pop(item.fingerprint, None)
                        self._tr.count("service.points.dropped")
                        continue
                    if spec is None:
                        spec = item.spec
                    elif item.spec is not spec:
                        break  # next job's points: keep chunks per-spec
                    items.append(self._work.popleft())
                if items:
                    return spec, items  # type: ignore[return-value]
                self._cond.wait()

    def _check_degraded(self, sup) -> None:
        if self.degraded or not sup or not sup.degraded():
            return
        self.degraded = True
        self._tr.count("service.degraded")
        self._tr.event(
            "service.degraded",
            families=sup.tripped_families(),
            deadline_exceeded=sup.deadline_exceeded(),
        )

    def _run_chunk(self, spec: JobSpec, items: list[_WorkItem]) -> None:
        sup = supervisor_module.current()
        self._check_degraded(sup)
        affected = self._affected_jobs(items)
        for job in affected:
            job.mark_running()
        self._tr.count("service.chunks")
        if self.persistence:
            self.persistence.record_dispatched(
                [item.fingerprint for item in items]
            )
        tasks = [
            PointTask(index=i, value=item.params, seed=item.seed)
            for i, item in enumerate(items)
        ]
        outcomes = run_points(
            _run_grid_point,
            spec.fn,
            tasks,
            n_jobs=self.workers,
            retries=spec.retries,
            backoff=spec.retry_backoff,
            timeout=spec.timeout,
            tracer=self._tr,
        )
        if sup:
            # the same MAPE pass batch sweeps get: engine faults trip
            # breakers, suspects re-run once on the reference engines
            outcomes = _supervise(
                sup,
                _run_grid_point,
                spec.fn,
                tasks,
                outcomes,
                tr=self._tr,
                n_jobs=self.workers,
                retries=spec.retries,
                backoff=spec.retry_backoff,
                timeout=spec.timeout,
            )
            self._check_degraded(sup)
        for item, outcome in zip(items, outcomes):
            with self._cond:
                followers = self._wanted.pop(item.fingerprint, [])
            if not followers:
                continue  # cancelled mid-chunk; result discarded
            if outcome.ok:
                self._resolve_ok(item, outcome.value, followers)
            else:
                self._tr.count("service.points.failed")
                for job, index in followers:
                    job.fail(
                        index,
                        error=outcome.error,
                        traceback=outcome.traceback,
                        attempts=outcome.attempts,
                    )
        if self.degraded:
            for job in affected:
                job.mark_degraded()
        for job in affected:
            self._tr.event("service.job.progress", **job.progress())
            if job.done:
                self._tr.event(f"service.job.{job.state}", job=job.id)
                if self.persistence and job.state in (DONE, FAILED):
                    # cancellations are journaled by the cancel() path
                    self.persistence.record_completed(job)

    def _resolve_ok(self, item: _WorkItem, value, followers) -> None:
        self._tr.count("service.points.executed")
        try:
            row = _merge_row(item.params, value, "parameters")
        except ConfigurationError as exc:
            for job, index in followers:
                job.fail(index, error=str(exc), traceback=None, attempts=1)
            return
        try:
            row = self.cache.put(item.fingerprint, row)
        except CheckpointError:
            # row not JSON-normalizable: usable by this job, not
            # cacheable — and so not durably storable either (the store
            # shares the cache's normalization contract)
            self._tr.count("service.cache.uncacheable")
        else:
            if self.persistence:
                # store the row first, then journal the point as done:
                # a 'point-done' record always names a durable row
                self.persistence.store_result(item.fingerprint, row)
                self.persistence.record_point_done(item.fingerprint)
        for pos, (job, index) in enumerate(followers):
            job.fill(
                index,
                dict(row),
                source="executed" if pos == 0 else "dedup",
            )

    def _affected_jobs(self, items: list[_WorkItem]) -> list[Job]:
        """Distinct jobs waiting on any item of this chunk, stable order."""
        seen: dict[int, Job] = {}
        with self._cond:
            for item in items:
                for job, _ in self._wanted.get(item.fingerprint, ()):
                    seen.setdefault(id(job), job)
        return list(seen.values())
