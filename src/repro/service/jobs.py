"""Job model for the resilience service.

A *job* is one sweep/experiment submission: an experiment name, a point
function, a list of parameter assignments (usually expanded from a grid
by :func:`repro.analysis.sweep.expand_grid`), and an optional parent
seed.  At admission the job is *resolved*: every point gets its own
deterministic child seed (``SeedSequence.spawn``, exactly as the batch
sweep would) and a content-address fingerprint
(:func:`repro.runtime.checkpoint.point_fingerprint`) that keys both the
result cache and in-flight deduplication.

Jobs are filled asynchronously by the scheduler thread and observed
from API threads, so every mutation happens under the job's lock, and
completion is signalled through a :class:`threading.Event` —
:meth:`Job.wait` never polls.

The finished job's :meth:`Job.result` is a plain
:class:`repro.analysis.sweep.SweepResult`: the service and the batch
sweep share one result vocabulary (rows in point order, failures as
error rows), so analysis code downstream cannot tell which path
produced its table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from ..analysis.sweep import (
    PointFailure,
    SweepResult,
    _seed_id,
    _seed_label,
    _spawn_seeds,
)
from ..errors import ConfigurationError, ServiceError
from ..rng import SeedLike
from ..runtime.checkpoint import point_fingerprint

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobPoint",
    "JobSpec",
    "PENDING",
    "RUNNING",
]

PENDING = "pending"  # accepted, no point executed yet
RUNNING = "running"  # at least one chunk of points dispatched
DONE = "done"  # every point resolved, no failures
FAILED = "failed"  # every point resolved, at least one failure
CANCELLED = "cancelled"  # cancelled before completion

_FINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """What one job asks the service to compute.

    ``experiment`` names the computation for cache identity: together
    with the point function's ``module.qualname`` it salts every point
    fingerprint, so two jobs share cached results only when they name
    the same experiment *and* the same function.  Execution knobs
    mirror :func:`repro.analysis.sweep.grid_sweep` exactly.
    """

    experiment: str
    fn: Callable[..., Mapping]
    points: tuple[dict, ...]
    seed: SeedLike = None
    retries: int = 0
    retry_backoff: float = 0.1
    timeout: Optional[float] = None

    def cache_salt(self) -> str:
        """Experiment identity used in point fingerprints."""
        fn = self.fn
        return (
            f"{self.experiment}/"
            f"{getattr(fn, '__module__', '?')}."
            f"{getattr(fn, '__qualname__', repr(fn))}"
        )


@dataclass(frozen=True)
class JobPoint:
    """One resolved point: parameters, child seed, content address."""

    index: int
    params: dict
    seed: Any  # per-point SeedSequence (None for unseeded jobs)
    fingerprint: str


@dataclass
class _Progress:
    total: int
    filled: int = 0
    cached: int = 0  # served from the result cache at admission
    deduped: int = 0  # joined onto an identical in-flight point
    executed: int = 0  # points this job's own submission executed
    failed: int = 0


class Job:
    """One accepted submission, filled point-by-point by the scheduler."""

    def __init__(self, job_id: str, spec: JobSpec):
        if not spec.points:
            raise ConfigurationError("a job needs at least one point")
        self.id = job_id
        self.spec = spec
        seeds = _spawn_seeds(spec.seed, len(spec.points))
        salt = spec.cache_salt()
        parent = _seed_label(spec.seed)
        self.points: tuple[JobPoint, ...] = tuple(
            JobPoint(
                index=i,
                params=dict(params),
                seed=seeds[i],
                fingerprint=point_fingerprint(
                    salt, params, f"{parent}:{_seed_id(seeds[i])}"
                ),
            )
            for i, params in enumerate(spec.points)
        )
        self.state = PENDING
        self.degraded = False  # finished (partly) under a tripped runtime
        self.events: list[dict] = []  # streamed from the trace facade
        self._rows: list[Optional[dict]] = [None] * len(spec.points)
        self._failures: dict[int, PointFailure] = {}
        self._progress = _Progress(total=len(spec.points))
        self._lock = threading.Lock()
        self._done = threading.Event()

    # -- filling (scheduler side) -----------------------------------------

    def fill(self, index: int, row: dict, *, source: str) -> None:
        """Resolve one point with its result row.

        ``source`` is ``"cache"``, ``"dedup"``, or ``"executed"`` —
        bookkeeping the load test's zero-lost/zero-duplicated criterion
        is audited against.  Filling the same index twice is a
        duplication bug and raises :class:`ServiceError`.
        """
        with self._lock:
            if self.state == CANCELLED:
                return
            if self._rows[index] is not None or index in self._failures:
                raise ServiceError(
                    f"job {self.id}: point {index} resolved twice "
                    f"(duplicate result, source={source!r})"
                )
            self._rows[index] = row
            self._progress.filled += 1
            if source == "cache":
                self._progress.cached += 1
            elif source == "dedup":
                self._progress.deduped += 1
            else:
                self._progress.executed += 1
            self._maybe_finish()

    def fail(
        self,
        index: int,
        *,
        error: str,
        traceback: Optional[str],
        attempts: int,
    ) -> None:
        """Resolve one point as failed (after the executor's retries)."""
        with self._lock:
            if self.state == CANCELLED:
                return
            if self._rows[index] is not None or index in self._failures:
                raise ServiceError(
                    f"job {self.id}: point {index} resolved twice "
                    "(duplicate failure)"
                )
            point = self.points[index]
            failure = PointFailure(
                index=index,
                params=dict(point.params),
                seed=_seed_id(point.seed),
                error=error,
                traceback=traceback,
                attempts=attempts,
            )
            self._failures[index] = failure
            self._rows[index] = failure.row()
            self._progress.filled += 1
            self._progress.failed += 1
            self._maybe_finish()

    def mark_running(self) -> None:
        with self._lock:
            if self.state == PENDING:
                self.state = RUNNING

    def mark_degraded(self) -> None:
        with self._lock:
            self.degraded = True

    def _maybe_finish(self) -> None:
        # caller holds self._lock
        if self._progress.filled >= self._progress.total \
                and self.state not in _FINAL:
            self.state = FAILED if self._failures else DONE
            self._done.set()

    def cancel(self) -> bool:
        """Mark the job cancelled; True iff it was still unfinished.

        Pending points are abandoned (the scheduler drops work items
        nobody else wants); points another job also requested still
        execute for that job.  Results that arrive after cancellation
        are discarded for this job but still feed the shared cache.
        """
        with self._lock:
            if self.state in _FINAL:
                return False
            self.state = CANCELLED
            self._done.set()
            return True

    # -- observation (API side) -------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a final state; True iff it did."""
        return self._done.wait(timeout)

    def progress(self) -> dict:
        """Live progress snapshot (counts, state, degradation flag)."""
        with self._lock:
            p = self._progress
            return {
                "job": self.id,
                "state": self.state,
                "total": p.total,
                "filled": p.filled,
                "cached": p.cached,
                "deduped": p.deduped,
                "executed": p.executed,
                "failed": p.failed,
                "degraded": self.degraded,
            }

    def result(self) -> SweepResult:
        """The finished job as a batch-sweep-shaped result.

        Raises :class:`ServiceError` while the job is unfinished or
        when it was cancelled (a cancelled job has no complete rows).
        """
        with self._lock:
            if self.state == CANCELLED:
                raise ServiceError(f"job {self.id} was cancelled")
            if self.state not in _FINAL:
                raise ServiceError(
                    f"job {self.id} is still {self.state}; wait() first"
                )
            rows = tuple(dict(r) for r in self._rows)  # type: ignore[arg-type]
            failures = tuple(
                self._failures[i] for i in sorted(self._failures)
            )
        return SweepResult(rows=rows, failures=failures)
