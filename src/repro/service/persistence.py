"""Crash durability for the service: write-ahead journal + result store.

A :class:`ResilienceService` without persistence loses every accepted
job when its process dies — the admission ledger, in-flight dedupe
table, and LRU result cache are all in-memory.  This module gives the
service a durable spine, built on the same hardened JSONL machinery the
sweep checkpoints trust (:class:`repro.runtime.checkpoint.JournalFile`:
atomic fsync'd header, fsync'd appends, torn-tail drop, ``.corrupt``
sidecar quarantine-and-heal):

* the **write-ahead journal** (``<dir>/journal.jsonl``) records job
  lifecycle transitions — ``accepted`` (before any point executes, with
  everything needed to rebuild the job: experiment, the point
  function's import path, JSON-round-tripped points, the parent seed,
  execution knobs, and the resolved point fingerprints), then
  ``chunk-dispatched`` / ``point-done`` / ``completed`` / ``cancelled``;
* the **result store** (``<dir>/results.jsonl``) is the on-disk twin of
  the in-memory :class:`~repro.service.cache.ResultCache`: one record
  per executed point, keyed by its content-address fingerprint
  (duplicate fingerprints keep the newest row, mirroring the
  checkpoint's duplicate-index rule).

Write ordering is the WAL contract: a job is journaled ``accepted``
*before* the scheduler sees it, and a point's row is appended to the
result store *before* its ``point-done`` journal record — so anything
journaled as done is durably recomputable-free, and a crash between the
two costs at most one re-execution (deduplicated by the store on the
next recovery, never duplicated in results).

:meth:`ServicePersistence.load` replays both files into a
:class:`RecoveredState`: the warm-start row set, the incomplete jobs to
re-admit, and the degradations tolerated on the way (healed corruption,
unknown records, jobs that no longer round-trip).  A job only
re-admits when its point function is importable by name and its
recomputed fingerprints match the journaled ones byte-for-byte —
anything else is skipped with a structural warning rather than silently
computing different results.
"""

from __future__ import annotations

import importlib
import os
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from ..errors import CheckpointError
from ..runtime import trace
from ..runtime.checkpoint import JournalFile, jsonable
from .jobs import Job, JobSpec

__all__ = [
    "JOURNAL_NAME",
    "RESULTS_NAME",
    "RecoveredState",
    "ServicePersistence",
    "rebuild_job",
]

JOURNAL_NAME = "journal.jsonl"
RESULTS_NAME = "results.jsonl"

_JOURNAL_HEADER = {"kind": "service-journal", "version": 1}
_RESULTS_HEADER = {"kind": "service-results", "version": 1}

#: Lifecycle record kinds the journal understands (unknown kinds are
#: tolerated on replay with a warning — forward compatibility).
RECORD_KINDS = (
    "accepted",
    "chunk-dispatched",
    "point-done",
    "completed",
    "cancelled",
)

_JOB_NUMBER = re.compile(r"^job-(\d+)$")


def _validate_journal_record(record: dict) -> None:
    if not isinstance(record.get("record"), str):
        raise TypeError("journal record has no 'record' kind")
    if not isinstance(record.get("job", ""), str):
        raise TypeError("journal 'job' is not a string")


def _validate_store_record(record: dict) -> None:
    if not isinstance(record.get("fingerprint"), str):
        raise TypeError("store record has no string fingerprint")
    if not isinstance(record.get("row"), dict):
        raise TypeError("store row is not a mapping")


# -- job spec round-trip ----------------------------------------------------


def _encode_fn(fn: Any) -> "tuple[str | None, str | None]":
    """``fn`` as an import path, or ``(None, reason)`` when unresumable."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        return None, f"point function {fn!r} has no import path"
    if module == "__main__":
        return None, "point function lives in __main__ (not importable)"
    if "<" in qualname:  # <lambda>, <locals> closures
        return None, f"point function {qualname!r} is not importable by name"
    return f"{module}:{qualname}", None


def _import_fn(path: str) -> Any:
    module_name, _, qualname = path.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _encode_seed(seed: Any) -> "tuple[Any, str | None]":
    """The parent seed as JSON, or ``(None, reason)`` when unresumable."""
    if seed is None:
        return None, None
    if isinstance(seed, (bool, np.bool_)):
        return None, f"seed {seed!r} is not journal-resumable"
    if isinstance(seed, (int, np.integer)):
        return {"kind": "int", "value": int(seed)}, None
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if not isinstance(entropy, int):
            return None, "SeedSequence entropy is not a plain integer"
        # the decoded parent starts with zero children spawned; job
        # resolution re-spawns the same family, and a parent the caller
        # had *already* spawned from before submitting is caught by the
        # rebuild fingerprint cross-check (children would diverge)
        return {
            "kind": "seedseq",
            "entropy": entropy,
            "spawn_key": [int(k) for k in seed.spawn_key],
        }, None
    return None, f"seed of type {type(seed).__name__} is not journal-resumable"


def _decode_seed(encoded: Any) -> Any:
    if encoded is None:
        return None
    if encoded["kind"] == "int":
        return int(encoded["value"])
    if encoded["kind"] == "seedseq":
        return np.random.SeedSequence(
            entropy=int(encoded["entropy"]),
            spawn_key=tuple(int(k) for k in encoded["spawn_key"]),
        )
    raise ValueError(f"unknown seed encoding {encoded!r}")


def encode_job(job: Job) -> dict:
    """The ``accepted`` journal record for one admitted job.

    Always written — even for jobs that cannot be resumed (lambda point
    functions, non-JSON parameters), which are recorded with
    ``resumable: false`` and the reason, so a recovery can report the
    loss instead of silently forgetting the job.
    """
    spec = job.spec
    record: dict = {
        "record": "accepted",
        "job": job.id,
        "experiment": spec.experiment,
        "retries": spec.retries,
        "retry_backoff": spec.retry_backoff,
        "timeout": spec.timeout,
        "fingerprints": [p.fingerprint for p in job.points],
    }
    reasons = []
    fn_path, why = _encode_fn(spec.fn)
    if why:
        reasons.append(why)
    record["fn"] = fn_path
    encoded_seed, why = _encode_seed(spec.seed)
    if why:
        reasons.append(why)
    record["seed"] = encoded_seed
    try:
        record["points"] = jsonable([dict(p) for p in spec.points])
    except CheckpointError as exc:
        record["points"] = None
        reasons.append(f"points are not JSON-round-trippable: {exc}")
    record["resumable"] = not reasons
    if reasons:
        record["reason"] = "; ".join(reasons)
    return record


def rebuild_job(record: Mapping) -> "tuple[Job | None, str | None]":
    """Reconstruct a :class:`Job` from its ``accepted`` journal record.

    Returns ``(job, None)`` on success or ``(None, reason)`` when the
    job cannot be resumed safely.  The rebuilt job's recomputed point
    fingerprints must equal the journaled ones — a divergence means the
    parameters or seed did not round-trip (or the code changed), and
    resuming would silently compute something else.
    """
    if not record.get("resumable"):
        return None, record.get("reason") or "journaled as not resumable"
    try:
        fn = _import_fn(record["fn"])
    except (ImportError, AttributeError, ValueError) as exc:
        return None, f"point function no longer importable: {exc}"
    try:
        seed = _decode_seed(record.get("seed"))
        spec = JobSpec(
            experiment=record["experiment"],
            fn=fn,
            points=tuple(dict(p) for p in record["points"]),
            seed=seed,
            retries=int(record.get("retries", 0)),
            retry_backoff=float(record.get("retry_backoff", 0.1)),
            timeout=record.get("timeout"),
        )
        job = Job(record["job"], spec)
    except Exception as exc:  # noqa: BLE001 - any rebuild fault => skip
        return None, f"job record does not rebuild: {exc!r}"
    if [p.fingerprint for p in job.points] != list(record["fingerprints"]):
        return None, (
            "recomputed point fingerprints diverge from the journal "
            "(parameters or seed did not round-trip); refusing to resume"
        )
    return job, None


# -- recovered state --------------------------------------------------------


@dataclass
class RecoveredState:
    """Everything :meth:`ServicePersistence.load` replayed from disk."""

    rows: dict = field(default_factory=dict)  # fingerprint -> stored row
    incomplete: list = field(default_factory=list)  # accepted records
    final_jobs: int = 0  # jobs already completed/cancelled
    done_fingerprints: set = field(default_factory=set)
    max_job_number: int = 0
    warnings: list = field(default_factory=list)
    quarantined: int = 0


class ServicePersistence:
    """The service's durable spine: journal + result store in one dir.

    Opening heals any recoverable damage in both files (and surfaces it
    on the load warnings).  All append methods are thread-safe — the
    scheduler thread and API threads both write — and every append is
    fsync'd before it returns, so ``appended - fsynced`` (the *journal
    lag* reported by :meth:`stats`) is only ever non-zero transiently
    inside a call; a crash mid-append leaves at most one torn line.
    """

    def __init__(
        self,
        directory: str,
        tracer: "trace.Tracer | trace.NullTracer | None" = None,
    ):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._tr = tracer if tracer is not None else trace.current()
        self._lock = threading.Lock()
        self.appended = 0
        self.fsynced = 0
        self.stored = 0
        self._journal = JournalFile.open(
            os.path.join(directory, JOURNAL_NAME),
            header=_JOURNAL_HEADER,
            label="service journal",
            heal_hint="the affected lifecycle records are dropped",
            validate=_validate_journal_record,
        )
        self._store = JournalFile.open(
            os.path.join(directory, RESULTS_NAME),
            header=_RESULTS_HEADER,
            label="service result store",
            heal_hint="the affected points will re-execute",
            validate=_validate_store_record,
        )

    @property
    def journal_path(self) -> str:
        return self._journal.path

    @property
    def results_path(self) -> str:
        return self._store.path

    # -- appends (write-ahead) ---------------------------------------------

    def _append(self, target: JournalFile, record: Mapping) -> None:
        with self._lock:
            self.appended += 1
            self._tr.count("service.journal.appends")
            target.append(record)
            self.fsynced += 1

    def record_accepted(self, job: Job) -> None:
        """Journal one admitted job *before* the scheduler sees it."""
        record = encode_job(job)
        if not record["resumable"]:
            self._tr.count("service.journal.unresumable")
            self._tr.warning(
                f"job {job.id} journaled as not resumable: "
                f"{record.get('reason')}",
                job=job.id,
            )
        self._append(self._journal, record)

    def record_dispatched(self, fingerprints: "list[str]") -> None:
        """Journal one scheduler chunk heading into execution."""
        self._append(
            self._journal,
            {
                "record": "chunk-dispatched",
                "n": len(fingerprints),
                "fingerprints": list(fingerprints),
            },
        )

    def record_point_done(self, fingerprint: str) -> None:
        """Journal one executed point — *after* its row hit the store."""
        self._append(
            self._journal, {"record": "point-done", "fingerprint": fingerprint}
        )

    def record_completed(self, job: Job) -> None:
        """Journal a job reaching ``done``/``failed``."""
        self._append(
            self._journal,
            {"record": "completed", "job": job.id, "state": job.state},
        )

    def record_cancelled(self, job: Job) -> None:
        """Journal a cancellation (a final state: never re-admitted)."""
        self._append(self._journal, {"record": "cancelled", "job": job.id})

    def store_result(self, fingerprint: str, row: Mapping) -> None:
        """Persist one normalized result row under its content address."""
        self._append(
            self._store, {"fingerprint": fingerprint, "row": dict(row)}
        )
        self.stored += 1
        self._tr.count("service.journal.results")

    # -- replay -------------------------------------------------------------

    def load(self) -> RecoveredState:
        """Replay both files into the state a fresh service resumes from."""
        state = RecoveredState(
            warnings=list(self._journal.warnings) + list(self._store.warnings),
            quarantined=self._journal.quarantined + self._store.quarantined,
        )
        for lineno, record in self._store.entries:
            fingerprint = record["fingerprint"]
            if fingerprint in state.rows:
                state.warnings.append(
                    {
                        "line": lineno,
                        "reason": f"duplicate fingerprint {fingerprint}; "
                        "keeping the newer row",
                    }
                )
            state.rows[fingerprint] = record["row"]
        self.stored = len(state.rows)
        jobs: dict[str, dict] = {}
        final: set[str] = set()
        for lineno, record in self._journal.entries:
            kind = record["record"]
            if kind == "accepted":
                jobs[record["job"]] = record
                matched = _JOB_NUMBER.match(record["job"])
                if matched:
                    state.max_job_number = max(
                        state.max_job_number, int(matched.group(1))
                    )
            elif kind in ("completed", "cancelled"):
                final.add(record["job"])
            elif kind == "point-done":
                state.done_fingerprints.add(record["fingerprint"])
            elif kind != "chunk-dispatched":
                state.warnings.append(
                    {
                        "line": lineno,
                        "reason": f"unknown journal record {kind!r} ignored",
                    }
                )
        state.incomplete = [
            record for job_id, record in jobs.items() if job_id not in final
        ]
        state.final_jobs = len(final & set(jobs))
        return state

    # -- observation --------------------------------------------------------

    def stats(self) -> dict:
        """Journal observability for :meth:`ResilienceService.status`."""
        with self._lock:
            return {
                "dir": self.directory,
                "appended": self.appended,
                "fsynced": self.fsynced,
                "lag": self.appended - self.fsynced,
                "stored_rows": self.stored,
            }

    def close(self) -> None:
        self._journal.close()
        self._store.close()

    def __enter__(self) -> "ServicePersistence":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
