"""Resilience-as-a-service: the long-running front door to the runtime.

:class:`ResilienceService` wraps the batch machinery the repo already
trusts — the event-driven executor, the MAPE supervisor, checkpoint
fingerprints, the trace facade — into a submit/await/cancel service::

    from repro.service import ResilienceService

    with ResilienceService() as svc:
        job = svc.submit(
            "survival", measure, grid={"redundancy": [1, 2, 3]}, seed=7
        )
        job.wait()
        table = job.result().to_table()

Jobs accept the same grids, seeds, and fault-tolerance knobs as
:func:`repro.analysis.sweep.grid_sweep` (one shared submit path via
:func:`~repro.analysis.sweep.expand_grid`), return the same
:class:`~repro.analysis.sweep.SweepResult`, and stream per-job progress
events from the tracer into each job's ``events`` feed.

Environment knobs (constructor arguments win over the environment):

===========================  =========================================
``REPRO_SERVICE_WORKERS``      worker processes per chunk (default 1 =
                               inline; ``-1`` = every core)
``REPRO_SERVICE_MAX_PENDING``  unfinished jobs admitted before
                               backpressure (default 128)
``REPRO_SERVICE_BATCH``        points per scheduler chunk (default 256)
``REPRO_SERVICE_CACHE_MAX``    result-cache entries kept, LRU past it
                               (default 0 = unbounded)
``REPRO_SERVICE_DIR``          directory for the crash-durable journal
                               + result store (default unset = fully
                               in-memory, pre-durability behavior)
===========================  =========================================

Degradation contract: when the installed supervisor trips a breaker or
its ``deadline_s`` budget expires, new submissions raise
:class:`~repro.errors.BackpressureError` while every accepted job runs
to completion on the reference engines.  Accepted work is never
dropped.

Durability contract (``service_dir`` / ``REPRO_SERVICE_DIR`` set): a
job whose ``submit()`` returned is journaled before the scheduler sees
it, every executed row is fsync'd to the on-disk result store before
being journaled done, and :meth:`start` *recovers* before serving —
the journal replays, the cache warm-starts from the store, incomplete
jobs are re-admitted (skipping already-stored points, preserving twin
dedupe), and completed/cancelled jobs stay final.  One process per
directory at a time; the knob unset changes nothing at all.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..analysis.sweep import expand_grid
from ..errors import ConfigurationError, ServiceError
from ..rng import SeedLike
from ..runtime import supervisor as supervisor_module
from ..runtime import trace
from ..runtime.trace import Tracer
from .cache import ResultCache
from .jobs import CANCELLED, DONE, FAILED, PENDING, RUNNING, Job, JobSpec
from .persistence import ServicePersistence, rebuild_job
from .queue import JobQueue
from .scheduler import Scheduler

__all__ = ["ResilienceService"]


def _env_int(name: str, default: int, *, minimum: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < minimum and value != -1:
        raise ConfigurationError(
            f"{name} must be >= {minimum} (or -1 where documented), "
            f"got {value}"
        )
    return value


class ResilienceService:
    """Async job-queue service over the fault-tolerant runtime."""

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        max_pending: Optional[int] = None,
        batch: Optional[int] = None,
        cache_max: Optional[int] = None,
        tracer: "Tracer | None" = None,
        service_dir: Optional[str] = None,
    ):
        self.workers = workers if workers is not None else _env_int(
            "REPRO_SERVICE_WORKERS", 1, minimum=1
        )
        self.max_pending = max_pending if max_pending is not None else \
            _env_int("REPRO_SERVICE_MAX_PENDING", 128, minimum=1)
        self.batch = batch if batch is not None else _env_int(
            "REPRO_SERVICE_BATCH", 256, minimum=1
        )
        cache_max = cache_max if cache_max is not None else _env_int(
            "REPRO_SERVICE_CACHE_MAX", 0, minimum=0
        )
        if service_dir is None:
            service_dir = os.environ.get("REPRO_SERVICE_DIR") or None
        self.service_dir = service_dir
        self._owns_tracer = tracer is None
        self.tracer = tracer if tracer is not None else Tracer(
            keep_events=False
        )
        self.tracer.add_event_hook(self._route_event)
        self.persistence = (
            ServicePersistence(service_dir, tracer=self.tracer)
            if service_dir
            else None
        )
        self.recovery: Optional[dict] = None  # set by start() when durable
        self.cache = ResultCache(cache_max, tracer=self.tracer)
        self.queue = JobQueue(self.max_pending)
        self.scheduler = Scheduler(
            self.cache,
            workers=self.workers,
            batch=self.batch,
            tracer=self.tracer,
            persistence=self.persistence,
        )
        self._submit_lock = threading.Lock()
        self._counter = 0
        self._started = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ResilienceService":
        """Start the scheduler thread (idempotent)."""
        if self._closed:
            raise ServiceError("service is closed; create a new one")
        if not self._started:
            if self.persistence is not None:
                self._recover()
            self.scheduler.start()
            self._started = True
            self.tracer.event(
                "service.start",
                workers=self.workers,
                max_pending=self.max_pending,
                batch=self.batch,
            )
        return self

    def _recover(self) -> None:
        """Replay the journal + result store before serving.

        Recovery reuses the *normal* admission machinery rather than a
        parallel replay path: the result store warm-starts the cache,
        then each incomplete job re-registers with the scheduler — its
        already-stored points fill as cache hits, points another
        recovered job owns attach as followers (twin dedupe survives the
        restart), and only genuinely missing points re-execute.
        """
        t0 = time.perf_counter()
        state = self.persistence.load()
        warmed = self.cache.warm(state.rows)
        self._counter = max(self._counter, state.max_job_number)
        recovered = skipped = 0
        replayed = deduped = rerun = 0
        for record in state.incomplete:
            job, reason = rebuild_job(record)
            if job is None:
                skipped += 1
                self.tracer.count("service.recover.skipped")
                self.tracer.warning(
                    f"journaled job {record.get('job')!r} not recovered: "
                    f"{reason}",
                    job=record.get("job"),
                )
                continue
            self.queue.restore(job)
            split = self.scheduler.register(job)
            replayed += split["cached"]
            deduped += split["deduped"]
            rerun += split["fresh"]
            recovered += 1
            self.tracer.count("service.recover.jobs")
            if job.done:
                # every point was already stored: finalize durably now
                self.persistence.record_completed(job)
            self.tracer.event(
                "service.job.recovered", job=job.id, **split
            )
        elapsed = time.perf_counter() - t0
        self.recovery = {
            "jobs": recovered,
            "skipped": skipped,
            "points_replayed": replayed,
            "points_deduped": deduped,
            "points_rerun": rerun,
            "rows_warmed": warmed,
            "quarantined": state.quarantined,
            "warnings": len(state.warnings),
            "elapsed_s": elapsed,
        }
        self.tracer.record_timing("service.recover", elapsed)
        self.tracer.event("service.recover", **self.recovery)

    def close(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Shut down: drain accepted jobs (default) or cancel them."""
        if self._closed:
            return
        if self._started:
            jobs = self.queue.unfinished()
            if drain:
                for job in jobs:
                    if not job.wait(timeout):
                        raise ServiceError(
                            f"job {job.id} still {job.state} after "
                            f"drain timeout {timeout}s"
                        )
            else:
                for job in jobs:
                    self.cancel(job.id)
            self.scheduler.stop(timeout=timeout)
        self._closed = True
        if self.persistence is not None:
            self.persistence.close()
        self.tracer.event("service.close", drained=drain)
        if self._owns_tracer:
            self.tracer.close()

    def __enter__(self) -> "ResilienceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        # after an exception, cancel instead of drain — don't block the
        # unwinding thread on someone else's work
        self.close(drain=exc_info[0] is None)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        experiment: str,
        fn: Callable[..., Mapping],
        *,
        grid: Optional[Mapping[str, Iterable]] = None,
        points: Optional[Sequence[Mapping]] = None,
        seed: SeedLike = None,
        retries: int = 0,
        retry_backoff: float = 0.1,
        timeout: Optional[float] = None,
    ) -> Job:
        """Accept one sweep job, or refuse it with backpressure.

        Exactly one of ``grid`` (expanded like :func:`grid_sweep`) or
        ``points`` (explicit parameter assignments) must be given.
        Points already in the result cache are served immediately;
        points identical to in-flight work attach to that execution.
        Raises :class:`BackpressureError` when the service is saturated
        or the runtime is degraded.
        """
        if not self._started or self._closed:
            raise ServiceError(
                "service not serving; use `with ResilienceService() as svc`"
                " or call start()"
            )
        if (grid is None) == (points is None):
            raise ConfigurationError(
                "submit() needs exactly one of grid= or points="
            )
        if grid is not None:
            if seed is not None and "seed" in grid:
                raise ConfigurationError(
                    "grid parameter 'seed' collides with the job's "
                    "seed keyword"
                )
            resolved = expand_grid(grid)
        else:
            resolved = [dict(p) for p in points]
            if not resolved:
                raise ConfigurationError("a job needs at least one point")
        spec = JobSpec(
            experiment=experiment,
            fn=fn,
            points=tuple(resolved),
            seed=seed,
            retries=retries,
            retry_backoff=retry_backoff,
            timeout=timeout,
        )
        with self._submit_lock:
            self._counter += 1
            job = Job(f"job-{self._counter:06d}", spec)
            self.queue.admit(job, degraded=self.degraded)
            self.tracer.count("service.jobs.accepted")
            self.tracer.event(
                "service.job.accepted",
                job=job.id,
                experiment=experiment,
                points=len(job.points),
            )
            if self.persistence is not None:
                # write-ahead: journaled before the scheduler can run it
                self.persistence.record_accepted(job)
            split = self.scheduler.register(job)
        if job.done:
            # served entirely from the cache: no execution at all
            self.tracer.count("service.jobs.cache_served")
            self.tracer.event(f"service.job.{job.state}", job=job.id)
            if self.persistence is not None:
                self.persistence.record_completed(job)
        self.tracer.event("service.job.split", job=job.id, **split)
        return job

    # -- observation / control ---------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether new work is being shed (breaker trip or deadline)."""
        if self.scheduler.degraded:
            return True
        sup = supervisor_module.current()
        return bool(sup) and sup.degraded()

    def job(self, job_id: str) -> Job:
        job = self.queue.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        return self.queue.jobs()

    def cancel(self, job_id: str) -> bool:
        """Cancel one job; True iff it was still unfinished."""
        job = self.job(job_id)
        cancelled = job.cancel()
        if cancelled:
            self.scheduler.drop_followers(job)
            if self.persistence is not None:
                self.persistence.record_cancelled(job)
            self.tracer.count("service.jobs.cancelled")
            self.tracer.event("service.job.cancelled", job=job.id)
        return cancelled

    def status(self) -> dict:
        """One JSON-ready health snapshot of the whole service."""
        sup = supervisor_module.current()
        states = self.queue.states()
        return {
            "serving": self._started and not self._closed,
            "degraded": self.degraded,
            "jobs": states,
            "job_counts": {
                state: states.get(state, 0)
                for state in (PENDING, RUNNING, DONE, FAILED, CANCELLED)
            },
            "pending_jobs": self.queue.pending(),
            "backlog_points": self.scheduler.backlog(),
            "cache": self.cache.stats(),
            "journal": (
                self.persistence.stats()
                if self.persistence is not None
                else None
            ),
            "recovery": self.recovery,
            "supervisor": sup.summary() if sup else None,
            "counters": {
                name: count
                for name, count in sorted(self.tracer.counters.items())
                if name.startswith(("service.", "executor."))
            },
        }

    # -- event streaming ---------------------------------------------------

    def _route_event(self, record: dict) -> None:
        """Tracer hook: copy job-tagged events onto that job's feed."""
        job_id = record.get("job")
        if not isinstance(job_id, str):
            return
        job = self.queue.get(job_id)
        if job is not None:
            job.events.append(record)
