"""R03: the crash-recovery drill — SIGKILL the service, lose nothing.

The drill proves the durability contract of
:mod:`repro.service.persistence` end to end, against a *real* process
death (``SIGKILL`` — no atexit handlers, no flush-on-close mercy) plus
deliberate on-disk damage:

1. **load** — a subprocess starts a durable
   :class:`~repro.service.ResilienceService` (``service_dir`` set) and
   submits several seeded jobs, one of them a twin of another (the
   in-flight dedupe case), then waits for completion.
2. **kill** — the parent polls the write-ahead journal counting
   ``point-done`` records and sends ``SIGKILL`` once a seeded threshold
   (between a quarter and half of the unique points) is journaled: the
   service dies with jobs accepted, rows stored, and work in flight.
3. **corrupt** — the parent then damages the survivors the way real
   crashes do: a *torn record* (a partial JSON line with no newline) is
   appended to the journal, simulating death mid-append, and one
   interior line of the result store is garbled with
   :func:`repro.runtime.chaos.corrupt_checkpoint`, simulating a bad
   sector under an otherwise-valid file.
4. **recover** — a fresh subprocess opens the same directory under a
   :class:`~repro.runtime.supervisor.Supervisor` recovery deadline:
   the torn tail is dropped, the garbled line is quarantined and the
   store healed, the journal replays, and every incomplete job
   re-admits and runs to completion.

Acceptance (checked structurally by :func:`run_crash_drill`): the kill
really was mid-run; every journaled job finishes after recovery with
zero lost points; the recovered process re-executes *exactly* the
points that were never durably stored (no duplicated work, no
forgotten work — the garbled store line re-executes, journaled-done
rows do not); every job's rows are byte-identical to an uninterrupted
batch :func:`~repro.analysis.sweep.grid_sweep` of the same grid and
seed; and recovery fits the supervisor's ``deadline_s`` budget.  The
whole drill is deterministic for a given seed — the benchmark harness
runs it twice and asserts identical rows.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from typing import Optional

from ..analysis.sweep import grid_sweep
from ..rng import make_rng
from ..runtime.chaos import corrupt_checkpoint
from ..runtime import supervisor as supervisor_module
from ..runtime.supervisor import Supervisor
from .api import ResilienceService
from .jobs import DONE
from .persistence import JOURNAL_NAME, RESULTS_NAME

__all__ = ["drill_point", "run_crash_drill"]

_REPORT_NAME = "recover_report.json"


def drill_point(x: int, y: int, seed=None) -> dict:
    """Deterministic point, deliberately unhurried (a wide kill window).

    Module-level (importable by name) so the journal can resume it.
    The sleep spreads ~150 points over a couple of seconds, letting the
    parent land its ``SIGKILL`` mid-load with room to spare.
    """
    time.sleep(0.008)
    salt = 0 if seed is None else int(seed.generate_state(1)[0]) % 997
    return {"score": x * 31 + y * 7 + salt * 1e-6, "salt": salt}


def _grids(n_jobs: int, points_per_job: int) -> list[dict]:
    """One distinct (x, y) grid per job, >= ``points_per_job`` points."""
    ys = 8
    xs = max(-(-points_per_job // ys), 1)
    return [
        {"x": [j * 1000 + i for i in range(xs)], "y": list(range(ys))}
        for j in range(n_jobs)
    ]


def _grid_size(grid: dict) -> int:
    return len(grid["x"]) * len(grid["y"])


def _count_done(journal_path: str) -> int:
    """Journaled ``point-done`` records so far (lenient raw scan)."""
    try:
        with open(journal_path, "rb") as fh:
            return fh.read().count(b'"record": "point-done"')
    except OSError:
        return 0


def _journal_state(journal_path: str) -> "tuple[dict, set]":
    """Lenient journal replay: accepted job -> fingerprints, final ids.

    The parent's ground truth for what recovery *must* do: jobs
    journaled ``completed``/``cancelled`` have to stay final, the rest
    have to re-admit, and only their never-stored points may re-run.
    """
    accepted: dict = {}
    final: set = set()
    with open(journal_path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if not isinstance(record, dict):
            continue
        kind = record.get("record")
        if kind == "accepted":
            accepted[record["job"]] = list(record.get("fingerprints") or ())
        elif kind in ("completed", "cancelled"):
            final.add(record["job"])
    return accepted, final


def _durable_rows(results_path: str) -> dict:
    """Lenient replay of the result store: fingerprint -> row.

    Mirrors what :class:`~repro.runtime.checkpoint.JournalFile` will
    keep on the next open (invalid lines quarantined, newest wins), so
    the drill can predict exactly which points must re-execute.
    """
    rows: dict = {}
    with open(results_path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if (
            isinstance(record, dict)
            and isinstance(record.get("fingerprint"), str)
            and isinstance(record.get("row"), dict)
        ):
            rows[record["fingerprint"]] = record["row"]
    return rows


# -- the two subprocess phases ----------------------------------------------


def _phase_load(
    service_dir: str, seed: int, n_jobs: int, points_per_job: int, batch: int
) -> None:
    """Submit the drill jobs and run until killed (or, untested, done)."""
    grids = _grids(n_jobs, points_per_job)
    with ResilienceService(
        workers=1, batch=batch, service_dir=service_dir
    ) as svc:
        handles = [
            svc.submit(f"crash-{j}", drill_point, grid=grid, seed=seed)
            for j, grid in enumerate(grids)
        ]
        # the twin: identical experiment + grid + seed, must dedupe
        handles.append(
            svc.submit("crash-0", drill_point, grid=grids[0], seed=seed)
        )
        for handle in handles:
            handle.wait(300)


def _phase_recover(
    service_dir: str,
    seed: int,
    n_jobs: int,
    points_per_job: int,
    batch: int,
    deadline_s: float,
    report_path: str,
) -> None:
    """Recover the directory, finish every job, write the report."""
    svc = ResilienceService(workers=1, batch=batch, service_dir=service_dir)
    sup = Supervisor(deadline_s=deadline_s)
    with supervisor_module.use(sup):
        # only the replay itself is under the recovery deadline — the
        # re-executions that follow are ordinary (already-accepted) work
        svc.start()
        within_deadline = not sup.deadline_exceeded()
    jobs = svc.jobs()
    for job in jobs:
        job.wait(300)
    report = {
        "recovery": svc.recovery,
        "deadline_s": deadline_s,
        "within_deadline": within_deadline,
        "executed_points": int(
            svc.tracer.counters.get("service.points.executed", 0)
        ),
        "jobs": [
            {
                "id": job.id,
                "experiment": job.spec.experiment,
                "state": job.state,
                "progress": job.progress(),
                "rows": job.result().rows if job.state == DONE else None,
            }
            for job in jobs
        ],
        "journal": svc.persistence.stats(),
    }
    svc.close()
    with open(report_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh)
        fh.flush()
        os.fsync(fh.fileno())


# -- the drill (parent process) ---------------------------------------------


def _spawn(phase: str, service_dir: str, **options) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    args = [
        sys.executable,
        "-m",
        "repro.service.crashdrill",
        "--phase",
        phase,
        "--dir",
        service_dir,
    ]
    for name, value in options.items():
        args.extend((f"--{name.replace('_', '-')}", str(value)))
    return subprocess.Popen(
        args, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


def run_crash_drill(
    seed: int = 2013,
    *,
    workdir: str,
    n_jobs: int = 3,
    points_per_job: int = 48,
    deadline_s: float = 30.0,
    batch: int = 8,
    verbose: bool = False,
) -> dict:
    """Run the R03 drill end to end; returns the acceptance report."""
    service_dir = os.path.join(workdir, "service")
    os.makedirs(service_dir, exist_ok=True)
    grids = _grids(n_jobs, points_per_job)
    unique_points = sum(_grid_size(grid) for grid in grids)
    rng = make_rng(seed)
    kill_after = int(
        rng.integers(unique_points // 4, unique_points // 2 + 1)
    )
    journal_path = os.path.join(service_dir, JOURNAL_NAME)
    results_path = os.path.join(service_dir, RESULTS_NAME)
    report: dict = {
        "seed": seed,
        "n_jobs": n_jobs + 1,  # the twin rides along
        "unique_points": unique_points,
        "kill_after_points": kill_after,
    }

    # -- phase 1+2: load in a subprocess, SIGKILL it mid-run ---------------
    start = time.perf_counter()
    proc = _spawn(
        "load",
        service_dir,
        seed=seed,
        jobs=n_jobs,
        points_per_job=points_per_job,
        batch=batch,
    )
    try:
        poll_deadline = time.monotonic() + 120
        while time.monotonic() < poll_deadline:
            if proc.poll() is not None:
                break
            if _count_done(journal_path) >= kill_after:
                break
            time.sleep(0.01)
        exited_early = proc.poll() is not None
        if not exited_early:
            proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait(60)
    done_at_kill = _count_done(journal_path)
    report.update(
        killed_mid_run=not exited_early,
        points_done_at_kill=done_at_kill,
    )

    # -- phase 3: damage the survivors the way real crashes do -------------
    with open(journal_path, "a", encoding="utf-8") as fh:
        # a torn record: death mid-append leaves a partial last line
        fh.write('{"record": "point-done", "fingerprint": "torn-by-')
    garbled = corrupt_checkpoint(results_path, seed=seed, n_lines=1)
    durable = _durable_rows(results_path)
    accepted, final_ids = _journal_state(journal_path)
    incomplete_ids = [j for j in accepted if j not in final_ids]
    needed = {
        fp for job_id in incomplete_ids for fp in accepted[job_id]
    }
    expected_rerun = len(needed - set(durable))
    report.update(
        garbled_store_lines=garbled,
        durable_rows_after_damage=len(durable),
        journaled_jobs=len(accepted),
        final_before_kill=sorted(final_ids),
        incomplete_at_kill=sorted(incomplete_ids),
        expected_reexecutions=expected_rerun,
    )

    # -- phase 4: recover in a fresh subprocess ----------------------------
    report_path = os.path.join(workdir, _REPORT_NAME)
    if os.path.exists(report_path):
        os.remove(report_path)
    proc = _spawn(
        "recover",
        service_dir,
        seed=seed,
        jobs=n_jobs,
        points_per_job=points_per_job,
        batch=batch,
        deadline=deadline_s,
        report=report_path,
    )
    recover_rc = proc.wait(300)
    report["recover_exit_code"] = recover_rc
    report["elapsed_s"] = round(time.perf_counter() - start, 3)
    recovered: dict = {}
    if recover_rc == 0 and os.path.exists(report_path):
        with open(report_path, encoding="utf-8") as fh:
            recovered = json.load(fh)
    report["recover"] = recovered

    # -- acceptance --------------------------------------------------------
    jobs = recovered.get("jobs", [])
    recovery_stats = recovered.get("recovery") or {}
    all_done = bool(jobs) and all(j["state"] == DONE for j in jobs)
    lost = sum(
        j["progress"]["total"] - j["progress"]["filled"] for j in jobs
    )
    baselines = {
        # list(), matching the JSON round-trip of the recovered rows
        f"crash-{j}": list(grid_sweep(grid, drill_point, seed=seed).rows)
        for j, grid in enumerate(grids)
    }
    rows_match = bool(jobs) and all(
        j["rows"] == baselines.get(j["experiment"]) for j in jobs
    )
    report["rows"] = {j["id"]: j["rows"] for j in jobs}
    checks = {
        "service killed mid-run (SIGKILL, work in flight)":
            report["killed_mid_run"]
            and 0 < done_at_kill < unique_points
            and bool(incomplete_ids),
        "every submission was journaled before the kill":
            len(accepted) == n_jobs + 1,
        "every incomplete job recovered and finished":
            recover_rc == 0
            and len(jobs) == len(incomplete_ids)
            and sorted(j["id"] for j in jobs) == sorted(incomplete_ids)
            and all_done
            and recovery_stats.get("skipped") == 0,
        "jobs completed before the kill stayed final":
            not any(j["id"] in final_ids for j in jobs),
        "zero points lost": bool(jobs) and lost == 0,
        "zero duplicated work (re-ran only never-stored points)":
            recovered.get("executed_points") == expected_rerun,
        "torn journal tail + garbled store healed":
            recovery_stats.get("quarantined", 0) >= 1,
        "rows byte-identical to uninterrupted grid_sweep": rows_match,
        "recovery within the supervisor deadline":
            bool(recovered.get("within_deadline")),
    }
    report["checks"] = checks
    report["passed"] = all(checks.values())
    if verbose:
        for label, ok in checks.items():
            print(f"  {'ok  ' if ok else 'FAIL'} {label}")
    return report


def main(argv: "Optional[list[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="R03 crash-drill subprocess phases (internal)"
    )
    parser.add_argument("--phase", choices=("load", "recover"), required=True)
    parser.add_argument("--dir", required=True)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--jobs", type=int, default=3)
    parser.add_argument("--points-per-job", type=int, default=48)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--deadline", type=float, default=30.0)
    parser.add_argument("--report", default=None)
    opts = parser.parse_args(argv)
    if opts.phase == "load":
        _phase_load(
            opts.dir, opts.seed, opts.jobs, opts.points_per_job, opts.batch
        )
    else:
        _phase_recover(
            opts.dir,
            opts.seed,
            opts.jobs,
            opts.points_per_job,
            opts.batch,
            opts.deadline,
            opts.report or os.path.join(opts.dir, os.pardir, _REPORT_NAME),
        )
    return 0


if __name__ == "__main__":
    # re-dispatch through the canonical import so drill_point's
    # __module__ is its real path, not __main__ (which would make the
    # journaled jobs unresumable — the very thing the drill tests)
    from repro.service import crashdrill as _canonical

    sys.exit(_canonical.main())
