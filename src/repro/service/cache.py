"""Content-addressed result cache keyed on checkpoint fingerprints.

The dedupe spine of the service: a completed point's row is stored
under its :func:`repro.runtime.checkpoint.point_fingerprint` — the same
content-address family the JSONL checkpoints bind sweeps with — so a
resubmitted identical ``(experiment, params, seed)`` request is served
without re-executing anything.  Rows are normalized through
:func:`repro.runtime.checkpoint.jsonable` on the way in, which makes a
cache-served row byte-identical to the row a checkpoint resume would
have replayed: one equality contract across both persistence layers.

Only *successful* rows are cached (failures re-run, mirroring the
checkpoint rule that failed points are never recorded).  Eviction is
LRU past ``max_entries`` (0 = unbounded); hits and misses are counted
on the service tracer as ``service.cache.hits`` /
``service.cache.misses`` and mirrored on the instance for direct
inspection.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping, Optional

from ..errors import ConfigurationError
from ..runtime import trace
from ..runtime.checkpoint import jsonable

__all__ = ["MISS", "ResultCache"]


class _Miss:
    """Sentinel distinguishing 'no entry' from a cached None/empty row."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<cache miss>"


MISS = _Miss()


class ResultCache:
    """Thread-safe LRU mapping of point fingerprint -> result row."""

    def __init__(
        self,
        max_entries: int = 0,
        tracer: "trace.Tracer | trace.NullTracer | None" = None,
    ):
        if max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be >= 0 (0 = unbounded), "
                f"got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._tr = tracer if tracer is not None else trace.current()
        self._rows: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, fingerprint: str) -> "dict | _Miss":
        """The cached row for ``fingerprint``, or :data:`MISS`.

        Hits return a shallow copy — cached rows are shared across jobs
        and must never be mutated through a job's result.
        """
        with self._lock:
            row = self._rows.get(fingerprint)
            if row is None:
                self.misses += 1
                self._tr.count("service.cache.misses")
                return MISS
            self._rows.move_to_end(fingerprint)
            self.hits += 1
            self._tr.count("service.cache.hits")
            return dict(row)

    def put(self, fingerprint: str, row: Mapping) -> dict:
        """Store one successful row; returns the normalized copy kept."""
        clean = {str(k): jsonable(v) for k, v in row.items()}
        with self._lock:
            self._rows[fingerprint] = clean
            self._rows.move_to_end(fingerprint)
            self._tr.count("service.cache.stores")
            while self.max_entries and len(self._rows) > self.max_entries:
                self._rows.popitem(last=False)
                self.evictions += 1
                self._tr.count("service.cache.evictions")
        return clean

    def warm(self, rows: Mapping[str, Mapping]) -> int:
        """Preload recovered rows without touching the hit/miss stats.

        The recovery warm-start path: rows replayed from the on-disk
        result store (already ``jsonable``-normalized when they were
        stored) become ordinary cache entries, so re-admitted jobs fill
        their already-executed points through the normal cache-hit path.
        Counted as ``service.cache.warmed``, not as stores.
        """
        with self._lock:
            for fingerprint, row in rows.items():
                self._rows[fingerprint] = dict(row)
                self._rows.move_to_end(fingerprint)
                while self.max_entries and len(self._rows) > self.max_entries:
                    self._rows.popitem(last=False)
                    self.evictions += 1
                    self._tr.count("service.cache.evictions")
        self._tr.count("service.cache.warmed", len(rows))
        return len(rows)

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._rows

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()

    def stats(self) -> dict:
        """Hit/miss/size snapshot for :meth:`ResilienceService.status`."""
        with self._lock:
            return {
                "entries": len(self._rows),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
