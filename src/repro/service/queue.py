"""Admission-controlled job ledger: backpressure before breakdown.

The queue is the service's *admission* surface, not its execution
order (the scheduler's work deque owns that): it tracks every accepted
job from submission to a final state, bounds how many may be unfinished
at once, and turns saturation into a loud
:class:`~repro.errors.BackpressureError` instead of unbounded queueing.

That refusal is the Cusick-survey ops view of resilience applied to the
service itself: a saturated or degraded system that keeps accepting
work converts its own overload into an outage for everyone; one that
sheds *new* work while finishing what it promised degrades gracefully.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..errors import BackpressureError, ConfigurationError
from .jobs import CANCELLED, DONE, FAILED, Job

__all__ = ["JobQueue"]

_FINAL = (DONE, FAILED, CANCELLED)


class JobQueue:
    """Thread-safe registry of accepted jobs with bounded admission."""

    def __init__(self, max_pending: int = 128):
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.max_pending = max_pending
        self._jobs: dict[str, Job] = {}  # insertion-ordered ledger
        self._lock = threading.Lock()

    def admit(self, job: Job, *, degraded: bool = False) -> None:
        """Accept ``job`` or raise :class:`BackpressureError`.

        Refusal reasons, checked in order: the runtime is degraded (a
        tripped breaker or spent deadline — new work is shed while
        accepted work finishes on the reference engines), or the number
        of unfinished jobs has reached ``max_pending``.
        """
        with self._lock:
            if degraded:
                raise BackpressureError(
                    "service is degraded (breaker tripped or deadline "
                    "budget spent); finishing accepted jobs on the "
                    "reference engines, rejecting new work"
                )
            pending = sum(
                1 for j in self._jobs.values() if j.state not in _FINAL
            )
            if pending >= self.max_pending:
                raise BackpressureError(
                    f"service is saturated: {pending} unfinished job(s) "
                    f">= max_pending={self.max_pending}; "
                    "resubmit after in-flight work drains"
                )
            self._jobs[job.id] = job

    def restore(self, job: Job) -> None:
        """Re-admit a journal-recovered job, bypassing admission checks.

        Recovery honors the promise the dead process made when it
        accepted the job — backpressure applies to *new* work, never to
        work already acknowledged, so a restart with more incomplete
        jobs than ``max_pending`` still re-admits all of them.
        """
        with self._lock:
            self._jobs[job.id] = job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every accepted job, in admission order."""
        with self._lock:
            return list(self._jobs.values())

    def unfinished(self) -> list[Job]:
        """Accepted jobs not yet in a final state, in admission order."""
        with self._lock:
            return [j for j in self._jobs.values() if j.state not in _FINAL]

    def pending(self) -> int:
        return len(self.unfinished())

    def states(self) -> dict:
        """Job count per state (for :meth:`ResilienceService.status`)."""
        counts: dict[str, int] = {}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts
