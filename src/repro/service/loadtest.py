"""R02: the service-layer load drill (see EXPERIMENTS.md).

Drives one :class:`~repro.service.ResilienceService` through the four
service-mode acceptance scenarios in sequence and reports every check
structurally (the benchmark harness exits non-zero if any fails):

1. **concurrent load** — thousands of points across many jobs submitted
   from several threads at once, including one *twin* job identical to
   another submitted concurrently.  Zero points lost, zero duplicated,
   every job's rows byte-identical to what the batch
   :func:`~repro.analysis.sweep.grid_sweep` produces for the same grid
   and seed, and the twin served without re-executing anything
   (in-flight dedupe or cache, depending on timing — never a second
   execution).
2. **resubmission** — an identical job resubmitted after completion is
   served entirely from the fingerprint cache: ``cached == n_points``,
   ``executed == 0``, counted via ``service.cache.hits``.
3. **cancellation** — a slow job cancelled right after admission lands
   in ``CANCELLED`` and the service keeps serving.
4. **graceful degradation** — a breaker tripped while a job is in
   flight: the accepted job still completes (reference engines), new
   submissions are refused with :class:`~repro.errors.BackpressureError`,
   and the service reports itself degraded.

Deterministic: the point function mixes its parameters with the spawned
child seed's first word, so results are reproducible and cache identity
is exercised for seeded work.

Pass ``service_dir`` to run the drill against a crash-durable service
(journal + result store under that directory).  Experiment names are
salted with a per-process run counter, so repeated drills in one
process — or against one persistent directory — never collide in the
fingerprint cache: every run executes its own points.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Optional

from ..analysis.sweep import grid_sweep
from ..errors import BackpressureError
from ..runtime.supervisor import Supervisor
from ..runtime import supervisor as supervisor_module
from .api import ResilienceService
from .jobs import CANCELLED

__all__ = ["load_point", "run_load_test", "slow_point"]

#: Per-process run counter: salts experiment names so repeated drills
#: (same process or same persistent service_dir) stay cache-disjoint.
_RUN_IDS = itertools.count(1)


def load_point(x: int, y: int, seed=None) -> dict:
    """Cheap deterministic point: parameters mixed with the child seed."""
    salt = 0 if seed is None else int(seed.generate_state(1)[0]) % 997
    return {"score": x * 31 + y * 7 + salt * 1e-6, "salt": salt}


def slow_point(i: int, seed=None) -> dict:
    """A point slow enough that a whole job is cancellable mid-run."""
    time.sleep(0.005)
    return {"v": i * 2}


def _grid_for(job_index: int, points_per_job: int) -> dict:
    """A distinct (x, y) grid per job index, >= ``points_per_job`` points."""
    ys = 8
    xs = max(-(-points_per_job // ys), 1)  # ceil: never undershoot
    return {
        "x": [job_index * 1000 + i for i in range(xs)],
        "y": list(range(ys)),
    }


def _grid_size(grid: dict) -> int:
    return len(grid["x"]) * len(grid["y"])


def run_load_test(
    total_points: int = 2000,
    n_jobs: int = 8,
    submitters: int = 4,
    seed: int = 2013,
    cancel_points: int = 100,
    verbose: bool = False,
    service_dir: Optional[str] = None,
) -> dict:
    """Run the R02 drill; returns the structured acceptance report.

    ``service_dir`` (optional) runs the drill against a crash-durable
    service: jobs journaled, rows persisted.  The acceptance checks are
    identical — durability must not change results.
    """
    run_id = next(_RUN_IDS)
    points_per_job = _grid_size(_grid_for(0, max(total_points // n_jobs, 8)))
    report: dict = {
        "requested_points": points_per_job * n_jobs,
        "n_jobs": n_jobs,
        "submitters": submitters,
    }
    if service_dir is not None:
        report["service_dir"] = service_dir

    with ResilienceService(workers=1, service_dir=service_dir) as svc:
        # -- phase 1: concurrent load (one twin rides along) --------------
        specs = [
            (f"load-{run_id}-{i}", _grid_for(i, points_per_job))
            for i in range(n_jobs)
        ]
        specs.append(specs[0])  # the twin: identical experiment + grid
        handles: list = [None] * len(specs)
        errors: list = []

        def submit_range(lo: int, hi: int) -> None:
            for k in range(lo, hi):
                name, grid = specs[k]
                try:
                    handles[k] = svc.submit(
                        name, load_point, grid=grid, seed=seed
                    )
                except Exception as exc:  # noqa: BLE001 - reported
                    errors.append(f"submit {k}: {exc!r}")

        start = time.perf_counter()
        per = -(-len(specs) // submitters)  # ceil split across threads
        threads = [
            threading.Thread(
                target=submit_range,
                args=(t * per, min((t + 1) * per, len(specs))),
            )
            for t in range(submitters)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        done = all(
            h is not None and h.wait(120) for h in handles
        )
        elapsed = time.perf_counter() - start

        lost = sum(
            h.progress()["total"] - h.progress()["filled"]
            for h in handles
            if h is not None
        )
        executed = svc.tracer.counters["service.points.executed"]
        unique_points = points_per_job * n_jobs  # the twin adds none
        twin = handles[-1]
        twin_progress = twin.progress() if twin is not None else {}
        rows_match = done and not errors
        if rows_match:
            for k, (name, grid) in enumerate(specs):
                expected = grid_sweep(grid, load_point, seed=seed)
                if handles[k].result().rows != expected.rows:
                    rows_match = False
                    errors.append(f"job {k} rows diverge from grid_sweep")
                    break
        report.update(
            submitted_jobs=len(specs),
            elapsed_s=round(elapsed, 3),
            throughput_pts_s=round(
                (unique_points + points_per_job) / elapsed, 1
            ),
            all_jobs_done=done,
            submit_errors=errors,
            lost_points=lost,
            executed_points=executed,
            unique_points=unique_points,
            no_duplicate_execution=executed == unique_points,
            twin_reexecuted=twin_progress.get("executed", -1),
            twin_served_without_execution=(
                twin_progress.get("executed") == 0
            ),
            rows_match_batch_sweep=rows_match,
        )

        # -- phase 2: identical resubmission is fully cache-served --------
        hits_before = svc.cache.hits
        resub = svc.submit(
            specs[0][0], load_point, grid=specs[0][1], seed=seed
        )
        resub.wait(60)
        p = resub.progress()
        report.update(
            resubmit_cached_points=p["cached"],
            resubmit_executed_points=p["executed"],
            resubmit_cache_hits=svc.cache.hits - hits_before,
            resubmit_fully_cached=(
                p["cached"] == points_per_job and p["executed"] == 0
            ),
        )

        # -- phase 3: cancellation ----------------------------------------
        slow = svc.submit(
            f"cancel-me-{run_id}",
            slow_point,
            grid={"i": list(range(cancel_points))},
            seed=seed,
        )
        cancelled = svc.cancel(slow.id)
        slow.wait(60)
        probe = svc.submit(
            f"post-cancel-probe-{run_id}",
            load_point,
            grid={"x": [1], "y": [1]},
        )
        probe.wait(60)
        report.update(
            cancel_honoured=cancelled and slow.state == CANCELLED,
            serving_after_cancel=probe.state == "done",
        )

        # -- phase 4: breaker trip mid-load degrades gracefully -----------
        sup = Supervisor(families=("agents",))
        with supervisor_module.use(sup):
            inflight = svc.submit(
                f"degrade-survivor-{run_id}",
                slow_point,
                grid={"i": list(range(cancel_points))},
                seed=seed,
            )
            time.sleep(0.05)  # let the chunk get in flight
            sup.trip("agents", "R02 load drill")
            try:
                svc.submit(
                    f"rejected-{run_id}",
                    load_point,
                    grid={"x": [1], "y": [1]},
                )
                backpressure = False
            except BackpressureError:
                backpressure = True
            survivor_done = inflight.wait(120) and \
                inflight.state in ("done", "failed")
            status = svc.status()
        report.update(
            degraded_backpressure=backpressure,
            degraded_job_completed=survivor_done,
            degraded_job_lost_points=(
                inflight.progress()["total"] - inflight.progress()["filled"]
            ),
            degraded_status=status["degraded"],
        )
        report["counters"] = {
            name: count
            for name, count in sorted(svc.tracer.counters.items())
            if name.startswith("service.")
        }

    checks = {
        "all jobs completed": report["all_jobs_done"]
        and not report["submit_errors"],
        "zero points lost": report["lost_points"] == 0,
        "zero duplicated executions": report["no_duplicate_execution"],
        "twin job served without re-execution":
            report["twin_served_without_execution"],
        "rows byte-identical to batch grid_sweep":
            report["rows_match_batch_sweep"],
        "identical resubmission fully cache-served":
            report["resubmit_fully_cached"],
        "cancellation honoured, service kept serving":
            report["cancel_honoured"] and report["serving_after_cancel"],
        "breaker trip sheds new work (backpressure)":
            report["degraded_backpressure"] and report["degraded_status"],
        "accepted job survived the trip":
            report["degraded_job_completed"]
            and report["degraded_job_lost_points"] == 0,
    }
    report["checks"] = checks
    report["passed"] = all(checks.values())
    if verbose:
        for label, ok in checks.items():
            print(f"  {'ok  ' if ok else 'FAIL'} {label}")
    return report
