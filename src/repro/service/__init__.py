"""Resilience-as-a-service: async job queue over the MAPE runtime.

The service lane (ops-view resilience, per the Cusick survey): a
long-running layer that accepts sweep/experiment submissions as jobs,
shards their points across a worker pool through the event-driven
executor, dedupes identical ``(experiment, params, seed)`` requests
against a content-addressed result cache (checkpoint fingerprints) and
against in-flight work, streams per-job progress from the trace
facade, and sheds new work with backpressure — never accepted work —
when the supervisor trips a breaker or a deadline budget expires.

* :mod:`.api` — :class:`ResilienceService`: submit/await/cancel/status;
* :mod:`.jobs` — the job model (resolution, states, results);
* :mod:`.queue` — admission ledger and backpressure;
* :mod:`.scheduler` — chunked sharding, in-flight dedupe, MAPE pass;
* :mod:`.cache` — content-addressed result cache;
* :mod:`.persistence` — crash durability: write-ahead job journal +
  on-disk result store (``REPRO_SERVICE_DIR``), replayed on restart;
* :mod:`.loadtest` — the R02 load drill (thousands of concurrent
  points, dedupe/caching/degradation acceptance checks);
* :mod:`.crashdrill` — the R03 crash drill (SIGKILL mid-load + mid-
  journal-write, recover, prove nothing was lost or duplicated).
"""

from .api import ResilienceService
from .cache import MISS, ResultCache
from .jobs import CANCELLED, DONE, FAILED, PENDING, RUNNING, Job, JobSpec
from .persistence import RecoveredState, ServicePersistence
from .queue import JobQueue
from .scheduler import Scheduler

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobQueue",
    "JobSpec",
    "MISS",
    "PENDING",
    "RUNNING",
    "RecoveredState",
    "ResilienceService",
    "ResultCache",
    "Scheduler",
    "ServicePersistence",
]
