"""Out-of-core CSR graphs: memory-mapped adjacency + chunked kernels.

:class:`~repro.networks.arraygraph.ArrayGraph` keeps its whole CSR in
RAM, and the single-pass kernels make it worse: ``newman_ziff_giant_
sizes`` calls ``indices.tolist()``, boxing every directed edge into a
Python int (~45 bytes each), so the practical "single-node graph
ceiling" named in the ROADMAP sits around 10^5 nodes.  This module is
the network analogue of :mod:`repro.csp.tiledengine`: the same kernels
stream the structure through fixed-budget blocks instead of refusing.

* :class:`MmapGraph` — a CSR graph whose ``indptr``/``indices`` live in
  memory-mapped ``.npy`` files.  Built once (either by copying an
  in-RAM CSR or by the two-pass spill-to-disk edge sort of
  :meth:`MmapGraph.from_edge_chunks`), reopened read-only by forked
  workers via :meth:`MmapGraph.open`.  Node labels default to the
  identity ``0..n-1`` so no O(n) label/index side tables are
  materialized.
* **chunked kernels** — :func:`chunked_newman_ziff_giant_sizes` and
  :func:`chunked_union_find_labels` walk ``indices`` in fixed-size
  blocks (``derive_chunk_elems`` turns the supervisor's
  ``memory_budget_mb`` into a block size, mirroring
  :func:`repro.csp.tiledengine.derive_block_bits`), so only
  O(block + n) bytes are ever boxed into Python objects regardless of
  edge count.  Outputs are byte-identical to the single-pass array
  kernels — same union order, same size bookkeeping — pinned by
  ``tests/networks/test_mmapgraph.py``.
* :func:`estimate_graph_bytes` — the pre-emption estimate the array
  engine consults against the supervisor's memory budget: over-budget
  graphs degrade to the chunked mmap kernels instead of OOM-ing
  (mirroring ``estimate_compile_bytes`` from the CSP family).

Engine selection lives in :mod:`repro.networks.engine`
(``REPRO_NETWORK_ENGINE=object|array|mmap``).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import weakref
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from . import arraygraph
from .arraygraph import ArrayGraph, as_arraygraph, directed_edge_blocks
from .graph import Graph

__all__ = [
    "ARRAY_BYTES_PER_DIRECTED_EDGE",
    "ARRAY_BYTES_PER_NODE",
    "CHUNK_ELEM_BYTES",
    "DEFAULT_CHUNK_BITS",
    "MAX_CHUNK_BITS",
    "MIN_CHUNK_BITS",
    "MmapGraph",
    "as_mmapgraph",
    "chunked_newman_ziff_giant_sizes",
    "chunked_union_find_labels",
    "derive_chunk_elems",
    "estimate_graph_bytes",
    "frontier_slices",
]

#: what one node costs the *array* engine at kernel time: int32/int64
#: CSR offsets, the label list + index dict, and the union-find
#: ``parent``/``size`` Python lists the Newman–Ziff kernel allocates
ARRAY_BYTES_PER_NODE = 120
#: what one directed CSR entry costs the array engine: the int32
#: ``indices`` slot plus the boxed Python int the single-pass
#: Newman–Ziff kernel creates via ``indices.tolist()``
ARRAY_BYTES_PER_DIRECTED_EDGE = 50

#: block size used when no memory budget is installed (2^18 = 256K
#: gathered neighbor slots ≈ 8 MiB in flight with temporaries)
DEFAULT_CHUNK_BITS = 18
#: smallest scheduled block — below 2^12 the per-block Python overhead
#: dominates the vectorized gathers
MIN_CHUNK_BITS = 12
#: largest scheduled block (2^20 slots) — past this the block's own
#: in-flight footprint (~128 MiB at 2^20, see ``CHUNK_ELEM_BYTES``)
#: approaches the budget the chunking exists to respect, and measured
#: wall time stops improving (the per-element Python union-find loop
#: dominates, not the per-block gather overhead)
MAX_CHUNK_BITS = 20

#: per-slot bytes in flight while one block streams, measured on the
#: Newman–Ziff kernel at n = 10^6: the int64 gathered neighbor array
#: (8), its int64 flat-index temporary (8), and — dominating — the
#: boxed Python ints of the block's ``tolist`` (~28 each plus the list
#: pointer: node ids exceed the small-int cache, so every slot boxes)
CHUNK_ELEM_BYTES = 128


def derive_chunk_elems(
    memory_budget_bytes: Optional[int] = None, workers: int = 1
) -> int:
    """Gathered-slots-per-block whose in-flight footprint fits the budget.

    The network mirror of :func:`repro.csp.tiledengine.derive_block_bits`:
    the supervisor's ``memory_budget_mb`` becomes block *scheduling*
    instead of an OOM — one streamed block costs
    ``2^b · CHUNK_ELEM_BYTES`` bytes, ``workers`` blocks may be in
    flight at once, and the largest ``b`` in
    ``[MIN_CHUNK_BITS, MAX_CHUNK_BITS]`` keeping that under budget is
    picked.  An impossible budget degrades to more, smaller blocks —
    never a refusal.  (O(n) per-node state — union-find forests,
    frontier masks — rides outside this accounting, like the tiled CSP
    engine's fit sets.)
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if memory_budget_bytes is None:
        return 1 << DEFAULT_CHUNK_BITS
    bits = MIN_CHUNK_BITS
    while (
        bits < MAX_CHUNK_BITS
        and (1 << (bits + 1)) * CHUNK_ELEM_BYTES * workers
        <= memory_budget_bytes
    ):
        bits += 1
    return 1 << bits


def estimate_graph_bytes(g) -> Optional[int]:
    """What running the array engine's kernels on ``g`` would allocate.

    Counts the CSR arrays plus the Python-object freight of the
    single-pass kernels (boxed ``tolist`` edges, union-find lists).
    The array engine compares this against the supervisor's
    ``memory_budget_mb`` and degrades to the chunked mmap kernels when
    over — pre-emption, not refusal.  Returns ``None`` for objects that
    don't expose ``n_nodes``/``n_edges``.
    """
    n = getattr(g, "n_nodes", None)
    m = getattr(g, "n_edges", None)
    if n is None or m is None:
        return None
    return int(n) * ARRAY_BYTES_PER_NODE + 2 * int(m) * (
        ARRAY_BYTES_PER_DIRECTED_EDGE
    )


# -- the memory-mapped graph ------------------------------------------------

_INDPTR_FILE = "indptr.npy"
_INDICES_FILE = "indices.npy"
_META_FILE = "meta.json"


def _spill_root() -> str:
    """Directory new spill graphs are created under (REPRO_MMAP_DIR)."""
    return os.environ.get("REPRO_MMAP_DIR") or tempfile.gettempdir()


class MmapGraph:
    """An immutable undirected CSR graph backed by memory-mapped files.

    Same row layout as :class:`~repro.networks.arraygraph.ArrayGraph`
    (``indices[indptr[i]:indptr[i+1]]`` = neighbors of node ``i``), but
    the arrays are ``np.memmap`` views of ``.npy`` files, so opening a
    multi-million-node graph costs two page-table mappings, not its
    edge count — and forked workers reopen the same files read-only
    instead of pickling adjacency.  Labels default to the identity
    ``0..n-1`` (no O(n) side tables); graphs converted from a labelled
    :class:`~repro.networks.graph.Graph` keep their label vocabulary in
    RAM for API parity.
    """

    __slots__ = (
        "indptr", "indices", "path", "_labels", "_index", "_degrees",
        "_finalizer", "__weakref__",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Sequence[object] | None = None,
        path: str | None = None,
        _owns_path: bool = False,
    ):
        n = len(indptr) - 1
        if n < 0 or indptr[0] != 0 or (
            len(indices) and indptr[-1] != len(indices)
        ):
            raise ConfigurationError("malformed CSR arrays")
        self.indptr = indptr
        self.indices = indices
        self.path = path
        self._labels = None if labels is None else list(labels)
        self._degrees: Optional[np.ndarray] = None
        if self._labels is not None:
            if len(self._labels) != n:
                raise ConfigurationError(
                    f"{len(self._labels)} labels for {n} CSR rows"
                )
            self._index: Optional[Dict[object, int]] = {
                lab: i for i, lab in enumerate(self._labels)
            }
            if len(self._index) != n:
                raise ConfigurationError("node labels must be unique")
        else:
            self._index = None
        self._finalizer = (
            weakref.finalize(self, shutil.rmtree, path, ignore_errors=True)
            if _owns_path and path is not None
            else None
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Sequence[object] | None = None,
        path: str | None = None,
    ) -> "MmapGraph":
        """Spill an in-RAM CSR to memory-mapped files, preserving layout.

        Intra-row neighbor order is copied verbatim, so every chunked
        kernel sees exactly the byte sequence the array kernels would —
        the equivalence contract rests on this.
        """
        owns = path is None
        if owns:
            path = tempfile.mkdtemp(prefix="repro-mmapgraph-",
                                    dir=_spill_root())
        os.makedirs(path, exist_ok=True)
        offset_dtype = (
            np.int64
            if len(indices) > arraygraph.INT32_INDPTR_CAPACITY
            else np.int32
        )
        mp = np.lib.format.open_memmap(
            os.path.join(path, _INDPTR_FILE), mode="w+",
            dtype=offset_dtype, shape=(len(indptr),),
        )
        mp[:] = indptr
        mp.flush()
        mi = np.lib.format.open_memmap(
            os.path.join(path, _INDICES_FILE), mode="w+",
            dtype=np.int32, shape=(len(indices),),
        )
        if len(indices):
            mi[:] = indices
            mi.flush()
        cls._write_meta(path, len(indptr) - 1, labels is None)
        g = cls(
            np.load(os.path.join(path, _INDPTR_FILE), mmap_mode="r"),
            np.load(os.path.join(path, _INDICES_FILE), mmap_mode="r"),
            labels=labels, path=path, _owns_path=owns,
        )
        del mp, mi
        return g

    @classmethod
    def from_edge_chunks(
        cls,
        n: int,
        edge_chunks: Iterable[tuple],
        path: str | None = None,
        *,
        check_duplicates: bool = True,
        spill_chunk: int = 1 << 20,
    ) -> "MmapGraph":
        """Out-of-core CSR build from a stream of ``(u, v)`` array chunks.

        The two-pass spill-to-disk edge sort:

        1. each incoming chunk is validated (bounds, self-loops) and
           appended to a raw spill file while per-node degrees
           accumulate — nothing proportional to the edge count stays in
           RAM;
        2. ``indptr`` is the degree cumsum; the spill file is re-read
           chunkwise and every directed edge is scattered to its row
           via a per-chunk counting sort (stable ``argsort`` by source
           + within-run offsets), which *is* the edge sort — rows come
           out grouped, in stream order within each row.

        The stream must be duplicate-free (both streaming generators
        are, by construction); ``check_duplicates`` adds one streamed
        verification pass that sorts each row and rejects parallel
        edges, matching :class:`~repro.networks.graph.Graph` semantics.
        Node labels are the identity ``0..n-1``.
        """
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        owns = path is None
        if owns:
            path = tempfile.mkdtemp(prefix="repro-mmapgraph-",
                                    dir=_spill_root())
        os.makedirs(path, exist_ok=True)
        spill_path = os.path.join(path, "edges.spill")
        deg = np.zeros(n, dtype=np.int64)
        n_edges = 0
        # pass 1: count degrees, spill validated chunks
        with open(spill_path, "wb") as spill:
            for chunk_u, chunk_v in edge_chunks:
                u = np.ascontiguousarray(chunk_u, dtype=np.int32)
                v = np.ascontiguousarray(chunk_v, dtype=np.int32)
                if u.shape != v.shape or u.ndim != 1:
                    raise ConfigurationError(
                        "edge chunks must be matching 1-D arrays"
                    )
                if len(u) == 0:
                    continue
                if u.min() < 0 or v.min() < 0 or \
                        u.max() >= n or v.max() >= n:
                    raise ConfigurationError(
                        f"edge endpoint out of range for n={n}"
                    )
                if np.any(u == v):
                    bad = int(u[u == v][0])
                    raise ConfigurationError(
                        f"self-loop on node {bad!r} is not allowed"
                    )
                deg_chunk = np.bincount(u, minlength=n)
                deg_chunk += np.bincount(v, minlength=n)
                deg += deg_chunk
                n_edges += len(u)
                np.stack([u, v], axis=1).tofile(spill)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        offset_dtype = (
            np.int64
            if 2 * n_edges > arraygraph.INT32_INDPTR_CAPACITY
            else np.int32
        )
        mp = np.lib.format.open_memmap(
            os.path.join(path, _INDPTR_FILE), mode="w+",
            dtype=offset_dtype, shape=(n + 1,),
        )
        mp[:] = indptr
        mp.flush()
        mi = np.lib.format.open_memmap(
            os.path.join(path, _INDICES_FILE), mode="w+",
            dtype=np.int32, shape=(2 * n_edges,),
        )
        # pass 2: counting-sort scatter of both edge directions
        cursor = indptr[:-1].copy()
        with open(spill_path, "rb") as spill:
            while True:
                raw = np.fromfile(
                    spill, dtype=np.int32, count=2 * spill_chunk
                )
                if len(raw) == 0:
                    break
                pairs = raw.reshape(-1, 2)
                for src, dst in ((pairs[:, 0], pairs[:, 1]),
                                 (pairs[:, 1], pairs[:, 0])):
                    order = np.argsort(src, kind="stable")
                    src_sorted = src[order].astype(np.int64)
                    # within-run offset: position among equal sources
                    run_start = np.r_[
                        0,
                        np.flatnonzero(src_sorted[1:] != src_sorted[:-1])
                        + 1,
                    ]
                    occ = np.arange(len(src_sorted), dtype=np.int64) - \
                        np.repeat(run_start, np.diff(
                            np.r_[run_start, len(src_sorted)]
                        ))
                    mi[cursor[src_sorted] + occ] = dst[order]
                    np.add.at(
                        cursor,
                        src_sorted[run_start],
                        np.diff(np.r_[run_start, len(src_sorted)]),
                    )
        if n_edges:
            mi.flush()
        os.remove(spill_path)
        cls._write_meta(path, n, True)
        g = cls(
            np.load(os.path.join(path, _INDPTR_FILE), mmap_mode="r"),
            np.load(os.path.join(path, _INDICES_FILE), mmap_mode="r"),
            labels=None, path=path, _owns_path=owns,
        )
        del mp, mi
        if check_duplicates:
            g._check_no_parallel_edges()
        return g

    @classmethod
    def open(cls, path: str) -> "MmapGraph":
        """Reopen a built graph read-only (e.g. from a forked worker).

        Only identity-labelled graphs round-trip through the on-disk
        format; label vocabularies live in the building process.
        """
        meta_path = os.path.join(path, _META_FILE)
        if not os.path.exists(meta_path):
            raise ConfigurationError(f"no mmap graph at {path!r}")
        with open(meta_path) as fh:
            meta = json.load(fh)
        if not meta.get("identity_labels", True):
            raise ConfigurationError(
                "only identity-labelled mmap graphs can be reopened"
            )
        return cls(
            np.load(os.path.join(path, _INDPTR_FILE), mmap_mode="r"),
            np.load(os.path.join(path, _INDICES_FILE), mmap_mode="r"),
            labels=None, path=path,
        )

    @staticmethod
    def _write_meta(path: str, n: int, identity_labels: bool) -> None:
        with open(os.path.join(path, _META_FILE), "w") as fh:
            json.dump(
                {"format": 1, "n_nodes": n,
                 "identity_labels": identity_labels},
                fh,
            )

    def _check_no_parallel_edges(self, block_elems: int = 1 << 20) -> None:
        """One streamed pass rejecting duplicate (u, v) entries per row."""
        for u, v in directed_edge_blocks(
            self.indptr, self.indices, block_elems, aligned=True
        ):
            if len(u) < 2:
                continue
            order = np.lexsort((v, u))
            su, sv = u[order], v[order]
            dup = (su[1:] == su[:-1]) & (sv[1:] == sv[:-1])
            if np.any(dup):
                at = int(np.flatnonzero(dup)[0])
                raise ConfigurationError(
                    f"parallel edge ({int(su[at])!r}, {int(sv[at])!r}) "
                    "in edge stream"
                )

    def to_graph(self) -> Graph:
        """Materialize back into a dict-of-sets :class:`Graph`."""
        labels = self.labels
        g = Graph(nodes=labels)
        indptr, indices = self.indptr, self.indices
        g.add_edges_from(
            (labels[i], labels[int(j)])
            for i in range(self.n_nodes)
            for j in indices[indptr[i]:indptr[i + 1]]
            if i < j
        )
        return g

    # -- queries -----------------------------------------------------------

    @property
    def labels(self):
        """Node labels (a ``range`` for identity-labelled graphs)."""
        return (
            range(self.n_nodes) if self._labels is None else self._labels
        )

    @property
    def identity_labels(self) -> bool:
        """Whether node labels are exactly ``0..n-1``."""
        return self._labels is None

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def __len__(self) -> int:
        return self.n_nodes

    def __contains__(self, node: object) -> bool:
        if self._index is not None:
            return node in self._index
        return (
            isinstance(node, (int, np.integer))
            and not isinstance(node, bool)
            and 0 <= int(node) < self.n_nodes
        )

    def nodes(self) -> Iterator[object]:
        """Iterate node labels in index order."""
        return iter(self.labels)

    def edges(self) -> Iterator[tuple]:
        """Iterate each undirected edge once (by ascending index pair)."""
        labels = self.labels
        for u, v in directed_edge_blocks(
            self.indptr, self.indices, 1 << DEFAULT_CHUNK_BITS
        ):
            mask = u < v
            for a, b in zip(u[mask].tolist(), v[mask].tolist()):
                yield (labels[a], labels[b])

    def index_of(self, node: object) -> int:
        """CSR row index of a node label."""
        if self._index is not None:
            try:
                return self._index[node]
            except KeyError:
                raise ConfigurationError(
                    f"node {node!r} not in graph"
                ) from None
        if node not in self:
            raise ConfigurationError(f"node {node!r} not in graph")
        return int(node)

    def indices_of(self, nodes: Iterable[object]) -> np.ndarray:
        """Vector of CSR row indices for an iterable of labels.

        For identity-labelled graphs an integer ndarray passes through
        with one vectorized bounds check — no per-node Python loop, the
        path the million-node attack orders take.
        """
        if self._index is None:
            if isinstance(nodes, np.ndarray) and np.issubdtype(
                nodes.dtype, np.integer
            ):
                idx = nodes.astype(np.int64, copy=False)
                if len(idx) and (
                    idx.min() < 0 or idx.max() >= self.n_nodes
                ):
                    bad = idx[(idx < 0) | (idx >= self.n_nodes)][0]
                    raise ConfigurationError(
                        f"node {int(bad)!r} not in graph"
                    )
                return idx
            return np.fromiter(
                (self.index_of(nd) for nd in nodes), dtype=np.int64
            )
        index = self._index
        try:
            return np.fromiter(
                (index[nd] for nd in nodes), dtype=np.int64
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"node {exc.args[0]!r} not in graph"
            ) from None

    def degree_array(self) -> np.ndarray:
        """Degrees as an int64 vector aligned with node indices (cached)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr).astype(np.int64)
        return self._degrees

    def degree(self, node: object) -> int:
        """Number of incident edges."""
        i = self.index_of(node)
        return int(self.indptr[i + 1] - self.indptr[i])

    def degrees(self) -> Dict[object, int]:
        """Degree of every node (label-keyed, for Graph API parity)."""
        return dict(zip(self.labels, self.degree_array().tolist()))

    def neighbors(self, node: object) -> FrozenSet[object]:
        """Adjacent node labels."""
        i = self.index_of(node)
        labels = self.labels
        return frozenset(
            labels[j] for j in
            np.asarray(
                self.indices[self.indptr[i]:self.indptr[i + 1]]
            ).tolist()
        )

    def has_edge(self, u: object, v: object) -> bool:
        """Whether the undirected edge {u, v} exists."""
        if u not in self or v not in self:
            return False
        i = self.index_of(u)
        row = np.asarray(self.indices[self.indptr[i]:self.indptr[i + 1]])
        return bool(np.any(row == self.index_of(v)))

    def check_removal_order(self, order) -> bool:
        """Whether ``order`` is a permutation of the nodes (vectorized).

        :func:`~repro.networks.percolation.percolation_curve` validates
        attack outputs; on an identity-labelled million-node graph the
        generic ``set(order) == set(g.nodes())`` comparison alone costs
        hundreds of MB of boxed ints, so this is the O(n) array check.
        """
        n = self.n_nodes
        if len(order) != n:
            return False
        if self._index is None:
            try:
                idx = self.indices_of(
                    order if isinstance(order, np.ndarray)
                    else np.asarray(order, dtype=np.int64)
                )
            except (ConfigurationError, TypeError, ValueError):
                return False
            seen = np.zeros(n, dtype=bool)
            seen[idx] = True
            return bool(seen.all())
        return set(order) == set(self.labels)

    # -- structure ---------------------------------------------------------

    def component_labels(self) -> np.ndarray:
        """Connected-component root per node (chunked union-find)."""
        return chunked_union_find_labels(self.indptr, self.indices)

    def connected_components(self) -> list[FrozenSet[object]]:
        """All connected components as frozensets of labels."""
        comp = self.component_labels()
        order = np.argsort(comp, kind="stable")
        sorted_comp = comp[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_comp[1:] != sorted_comp[:-1]]
        )
        bounds = np.r_[starts, len(sorted_comp)]
        labels = self.labels
        return [
            frozenset(labels[int(i)] for i in order[a:b])
            for a, b in zip(bounds[:-1], bounds[1:])
        ]

    def giant_component_size(self) -> int:
        """Size of the largest connected component (0 for empty)."""
        if self.n_nodes == 0:
            return 0
        comp = self.component_labels()
        return int(np.bincount(comp, minlength=self.n_nodes).max())

    # -- attack orderings --------------------------------------------------

    def degree_removal_order(self):
        """Labels from highest degree down, ties by ascending ``repr``.

        Matches :meth:`ArrayGraph.degree_removal_order` bit-for-bit.
        For identity labels the decimal-string tie order is computed
        *numerically* — ``repr(i)`` of a non-negative int sorts like
        ``(i / 10^digits, digits)`` — so no O(n) array of Python
        strings is built; the result is an int64 ndarray of node ids.
        """
        deg = self.degree_array()
        if self._labels is not None:
            reprs = np.array([repr(lab) for lab in self._labels])
            order = np.lexsort((reprs, -deg))
            labels = self._labels
            return [labels[int(i)] for i in order]
        frac, digits = _decimal_sort_keys(self.n_nodes)
        order = np.lexsort((digits, frac, -deg))
        return order.astype(np.int64)

    def adaptive_degree_removal_order(self):
        """Recompute-degree removal order (max ``(degree, repr)`` per step).

        Same incremental algorithm as the array graph; inherently
        O(n²) scans, so it is a small-graph tool even here.
        """
        n = self.n_nodes
        deg = self.degree_array().copy()
        active = np.ones(n, dtype=bool)
        indptr, indices, labels = self.indptr, self.indices, self.labels
        order: list = []
        for _ in range(n):
            top = int(np.max(np.where(active, deg, -1)))
            cands = np.flatnonzero(active & (deg == top))
            if len(cands) == 1:
                pick = int(cands[0])
            else:
                pick = int(max(cands, key=lambda i: repr(labels[int(i)])))
            order.append(labels[pick])
            active[pick] = False
            nbrs = np.asarray(indices[indptr[pick]:indptr[pick + 1]])
            live = nbrs[active[nbrs]]
            deg[live] -= 1
        return order


def _decimal_sort_keys(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Keys ordering ``0..n-1`` like their decimal ``repr`` strings.

    ``repr(x)`` for non-negative ints sorts lexicographically exactly as
    ``x / 10^digits(x)`` sorts numerically, with equal keys (one string
    a prefix of the other, e.g. ``"123"`` vs ``"1230"``) broken by
    digit count.  Differences between distinct keys are ≥ 10^-10 for
    n < 2^31, far above float64 rounding, so the order is exact.
    """
    x = np.arange(n, dtype=np.int64)
    digits = np.ones(n, dtype=np.int64)
    bound = 10
    while bound <= max(n - 1, 1):
        digits[x >= bound] += 1
        bound *= 10
    frac = x / np.power(10.0, digits)
    return frac, digits


# -- conversion cache ------------------------------------------------------

_MMAP_CACHE: "weakref.WeakKeyDictionary[object, tuple[int, MmapGraph]]" = (
    weakref.WeakKeyDictionary()
)


def as_mmapgraph(g: "Graph | ArrayGraph | MmapGraph") -> MmapGraph:
    """Memory-mapped view of ``g``, cached per :class:`Graph` version.

    In-RAM graphs are spilled once (via their :class:`ArrayGraph` CSR,
    so intra-row order — and therefore every kernel byte — matches the
    array engine); subsequent calls on an unmutated graph reuse the
    spill.
    """
    if isinstance(g, MmapGraph):
        return g
    version = getattr(g, "_version", None)
    if version is not None:
        entry = _MMAP_CACHE.get(g)
        if entry is not None and entry[0] == version:
            return entry[1]
    ag = as_arraygraph(g)
    labels = ag.labels
    identity = all(
        isinstance(lab, int) and lab == i for i, lab in enumerate(labels)
    )
    mg = MmapGraph.from_arrays(
        ag.indptr, ag.indices, labels=None if identity else labels
    )
    if version is not None:
        _MMAP_CACHE[g] = (version, mg)
    return mg


# -- chunked kernels -------------------------------------------------------


def frontier_slices(
    indptr: np.ndarray, rows: np.ndarray, block_elems: int
) -> Iterator[tuple[int, int]]:
    """Split ``rows`` into slices whose total degree fits one block.

    Yields ``(a, b)`` bounds over ``rows`` such that the gathered
    neighbors of ``rows[a:b]`` hold at most ``block_elems`` entries
    (always at least one row, so a single hub larger than the block
    still streams).  The scheduling primitive under every chunked
    frontier kernel.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if len(rows) == 0:
        return
    deg = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    cum = np.cumsum(deg)
    a = 0
    base = 0
    while a < len(rows):
        b = int(np.searchsorted(cum, base + block_elems, side="right"))
        if b <= a:
            b = a + 1  # one oversized row: stream it alone
        yield a, b
        base = int(cum[b - 1])
        a = b


def chunked_newman_ziff_giant_sizes(
    indptr: np.ndarray,
    indices: np.ndarray,
    order: np.ndarray,
    base: np.ndarray | None = None,
    block_elems: Optional[int] = None,
) -> np.ndarray:
    """Block-streamed :func:`~repro.networks.arraygraph.newman_ziff_giant_sizes`.

    Byte-identical output: the same additions run through the same
    union-find in the same order — only the neighbor lists arrive via
    per-block CSR gathers (``O(block)`` boxed ints in flight) instead
    of one ``indices.tolist()`` of the whole edge array.
    """
    if block_elems is None:
        block_elems = 1 << DEFAULT_CHUNK_BITS
    n = len(indptr) - 1
    parent = list(range(n))
    size = [1] * n
    active = bytearray(n)
    best = 0

    additions = np.asarray(order, dtype=np.int64)
    prefix = (
        np.empty(0, dtype=np.int64) if base is None
        else np.asarray(base, dtype=np.int64)
    )
    n_prefix = len(prefix)
    seq = np.concatenate([prefix, additions])
    sizes = np.empty(len(additions) + 1, dtype=np.int64)
    sizes[0] = 0  # overwritten below unless the base is empty
    i = 0
    for lo, hi in frontier_slices(indptr, seq, block_elems):
        block_nodes = seq[lo:hi]
        flat, counts = arraygraph.gather_rows(indptr, indices, block_nodes)
        idx = flat.tolist()
        counts_list = counts.tolist()
        nodes_list = block_nodes.tolist()
        k = 0
        for local, node in enumerate(nodes_list):
            active[node] = 1
            a = node
            for _ in range(counts_list[local]):
                b = idx[k]
                k += 1
                if not active[b]:
                    continue
                while parent[a] != a:
                    parent[a] = parent[parent[a]]
                    a = parent[a]
                while parent[b] != b:
                    parent[b] = parent[parent[b]]
                    b = parent[b]
                if a != b:
                    if size[a] < size[b]:
                        a, b = b, a
                    parent[b] = a
                    size[a] += size[b]
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            if size[a] > best:
                best = size[a]
            if i >= n_prefix - 1:
                sizes[i - n_prefix + 1] = best
            i += 1
    if len(seq) == 0 or (n_prefix and len(additions) == 0):
        sizes[0] = best
    return sizes


def chunked_union_find_labels(
    indptr: np.ndarray,
    indices: np.ndarray,
    block_elems: Optional[int] = None,
) -> np.ndarray:
    """Component roots via union-find over block-streamed CSR edges.

    Streams each undirected edge once (``u < v``) in flat CSR order —
    the same edge sequence :meth:`ArrayGraph.edge_arrays` yields — so
    the parent forest, and therefore the returned root labels, are
    byte-identical to :func:`~repro.networks.arraygraph.
    union_find_labels` without ever materializing the full edge list.
    """
    if block_elems is None:
        block_elems = 1 << DEFAULT_CHUNK_BITS
    n = len(indptr) - 1
    parent = list(range(n))
    size = [1] * n
    for u_blk, v_blk in directed_edge_blocks(indptr, indices, block_elems):
        mask = u_blk < v_blk
        for a, b in zip(u_blk[mask].tolist(), v_blk[mask].tolist()):
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            while parent[b] != b:
                parent[b] = parent[parent[b]]
                b = parent[b]
            if a != b:
                if size[a] < size[b]:
                    a, b = b, a
                parent[b] = a
                size[a] += size[b]
    roots = np.asarray(parent, dtype=np.int64)
    while True:
        hop = roots[roots]
        if np.array_equal(hop, roots):
            return roots
        roots = hop
