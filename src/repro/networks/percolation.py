"""Percolation curves: connectivity as nodes are removed.

The robust-yet-fragile signature (E21) is read off the giant-component
curve S(f): under random failure a scale-free network keeps a giant
component up to very high removed fractions f; under targeted hub attack
S(f) collapses after removing a few percent of nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, ConfigurationError
from ..rng import SeedLike, make_rng
from .attacks import AttackStrategy
from .engine import NetworkEngine, make_network_engine
from .graph import Graph

__all__ = ["PercolationCurve", "percolation_curve", "critical_fraction"]


@dataclass(frozen=True)
class PercolationCurve:
    """Giant-component sizes along a removal sequence.

    ``removed_fraction[i]`` nodes removed → ``giant_fraction[i]`` of the
    original node count still in the largest component.
    """

    removed_fraction: np.ndarray
    giant_fraction: np.ndarray

    def __post_init__(self) -> None:
        rf = np.asarray(self.removed_fraction, dtype=float)
        gf = np.asarray(self.giant_fraction, dtype=float)
        object.__setattr__(self, "removed_fraction", rf)
        object.__setattr__(self, "giant_fraction", gf)
        if rf.shape != gf.shape or rf.ndim != 1:
            raise ConfigurationError("curve arrays must be matching 1-D shapes")

    def giant_at(self, f: float) -> float:
        """Interpolated giant-component fraction after removing fraction f."""
        return float(np.interp(f, self.removed_fraction, self.giant_fraction))

    def robustness_index(self) -> float:
        """R = mean giant fraction over the removal sequence (Schneider R).

        Bounded by ~0.5 for a perfectly robust graph; near 0 for one that
        shatters immediately.
        """
        return float(np.trapezoid(self.giant_fraction, self.removed_fraction))


def percolation_curve(
    g: Graph,
    attack: AttackStrategy,
    seed: SeedLike = None,
    resolution: int | None = None,
    engine: "str | NetworkEngine | None" = None,
) -> PercolationCurve:
    """Remove nodes in attack order, tracking the giant component.

    ``resolution`` caps how many points are measured (evenly spaced along
    the removal sequence); default measures after every removal.
    ``engine`` picks the kernel implementation (see
    :func:`~repro.networks.engine.make_network_engine`); the array engine
    evaluates the whole curve in one reverse Newman–Ziff pass instead of
    recomputing components after every removal, with identical output.
    """
    n = g.n_nodes
    if n == 0:
        raise ConfigurationError("cannot percolate an empty graph")
    eng = make_network_engine(engine)
    order = attack.removal_order(eng.ordering_graph(g), make_rng(seed))
    # a permutation = right length + right node set (duplicates shrink the
    # set); compares nodes themselves, not their reprs.  Graphs with a
    # vectorized validator (MmapGraph) supply it — at 10^6+ nodes the
    # set comparison alone would box hundreds of MB of ints.
    check = getattr(g, "check_removal_order", None)
    if check is not None:
        is_permutation = bool(check(order))
    else:
        is_permutation = len(order) == n and set(order) == set(g.nodes())
    if not is_permutation:
        raise ConfigurationError(
            f"attack {attack.label} did not return a permutation of the nodes"
        )
    if resolution is not None:
        if resolution < 2:
            raise ConfigurationError(f"resolution must be >= 2, got {resolution}")
        marks = {int(round(i * n / (resolution - 1))) for i in range(resolution)}
        checkpoints = sorted(marks - {0})
    else:
        checkpoints = list(range(1, n + 1))
    sizes = eng.percolation_giant_sizes(g, order, checkpoints)
    removed_fraction = [0.0] + [i / n for i in checkpoints]
    giant_fraction = [s / n for s in sizes]
    return PercolationCurve(
        np.asarray(removed_fraction), np.asarray(giant_fraction)
    )


def critical_fraction(curve: PercolationCurve, threshold: float = 0.05) -> float:
    """Smallest removed fraction at which the giant component falls below
    ``threshold`` of the original size (1.0 if it never does).

    This is the experiment's fragility landmark: tiny for targeted
    attacks on scale-free nets, near 1 for random failures.
    """
    if not 0 < threshold < 1:
        raise AnalysisError(f"threshold must be in (0, 1), got {threshold}")
    below = np.nonzero(curve.giant_fraction < threshold)[0]
    if len(below) == 0:
        return 1.0
    return float(curve.removed_fraction[below[0]])
