"""Random-graph generators: scale-free vs. homogeneous ensembles.

Barabási's robust-yet-fragile result (paper §5.1) compares scale-free
networks (preferential attachment) against homogeneous random graphs.
All generators are written from scratch over :class:`repro.networks.Graph`
and cross-validated against networkx in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "configuration_star",
    "degree_histogram",
]


def erdos_renyi(n: int, p: float, seed: SeedLike = None) -> Graph:
    """G(n, p): each of the n(n−1)/2 possible edges appears with prob. p."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    g = Graph(nodes=range(n))
    if n < 2 or p == 0.0:
        return g
    # vectorized upper-triangle sampling: one uniform draw per pair (the
    # same stream as enumerating triu_indices), then only the hits are
    # decoded from linear index to (i, j) — row-major over the triangle,
    # so the edge set is identical to the per-pair loop this replaces
    n_pairs = n * (n - 1) // 2
    hits = np.flatnonzero(rng.random(n_pairs) < p)
    if hits.size:
        lengths = np.arange(n - 1, 0, -1, dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        i = np.searchsorted(starts, hits, side="right") - 1
        j = i + 1 + (hits - starts[i])
        g.add_edges_from(zip(i.tolist(), j.tolist()))
    return g


def barabasi_albert(n: int, m: int, seed: SeedLike = None) -> Graph:
    """BA preferential attachment: each new node links to ``m`` existing
    nodes chosen proportionally to their degree.

    Produces the scale-free degree distribution (P(k) ~ k^-3) whose hubs
    make the network robust to random failure but fragile to targeted
    attack.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if n < m + 1:
        raise ConfigurationError(f"n must be >= m+1 = {m + 1}, got {n}")
    rng = make_rng(seed)
    g = Graph(nodes=range(n))
    # the attachment draws never read the graph, so edges are collected
    # and bulk-inserted at the end in the same chronological order —
    # identical draws, identical adjacency
    edges: list[tuple[int, int]] = []
    # seed clique of m+1 nodes so every early node has degree >= m
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            edges.append((u, v))
    # repeated-nodes list implements preferential attachment in O(1)/draw
    repeated: list[int] = []
    for u in range(m + 1):
        repeated.extend([u] * m)
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = repeated[rng.integers(len(repeated))]
            targets.add(pick)
        for t in targets:
            edges.append((new, t))
            repeated.append(t)
        repeated.extend([new] * m)
    g.add_edges_from(edges)
    return g


def watts_strogatz(n: int, k: int, p: float, seed: SeedLike = None) -> Graph:
    """WS small-world: ring lattice of degree ``k`` with rewiring prob ``p``."""
    if k < 2 or k % 2 != 0:
        raise ConfigurationError(f"k must be a positive even integer, got {k}")
    if n <= k:
        raise ConfigurationError(f"n must exceed k, got n={n}, k={k}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    g = Graph(nodes=range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            g.add_edge(u, (u + offset) % n)
    if p == 0.0:
        return g
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < p and g.has_edge(u, v):
                candidates = [w for w in range(n) if w != u and not g.has_edge(u, w)]
                if not candidates:
                    continue
                w = candidates[rng.integers(len(candidates))]
                g.remove_edge(u, v)
                g.add_edge(u, w)
    return g


def configuration_star(n_hubs: int, leaves_per_hub: int) -> Graph:
    """A deterministic hub-and-spoke graph: extreme scale-free caricature.

    Useful for analytic sanity checks: removing the ``n_hubs`` hubs
    shatters the graph completely.
    """
    if n_hubs < 1:
        raise ConfigurationError(f"n_hubs must be >= 1, got {n_hubs}")
    if leaves_per_hub < 1:
        raise ConfigurationError(
            f"leaves_per_hub must be >= 1, got {leaves_per_hub}"
        )
    g = Graph()
    node = 0
    hubs = []
    for _ in range(n_hubs):
        hub = node
        node += 1
        hubs.append(hub)
        g.add_node(hub)
        for _ in range(leaves_per_hub):
            g.add_edge(hub, node)
            node += 1
    # chain the hubs so the pristine graph is connected
    for a, b in zip(hubs, hubs[1:]):
        g.add_edge(a, b)
    return g


def degree_histogram(g: Graph) -> np.ndarray:
    """counts[k] = number of nodes of degree k (length = max degree + 1)."""
    degrees = list(g.degrees().values())
    if not degrees:
        return np.zeros(1, dtype=int)
    return np.bincount(np.asarray(degrees, dtype=np.intp))
