"""Random-graph generators: scale-free vs. homogeneous ensembles.

Barabási's robust-yet-fragile result (paper §5.1) compares scale-free
networks (preferential attachment) against homogeneous random graphs.
All generators are written from scratch over :class:`repro.networks.Graph`
and cross-validated against networkx in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .graph import Graph

__all__ = [
    "erdos_renyi",
    "erdos_renyi_stream",
    "barabasi_albert",
    "barabasi_albert_stream",
    "watts_strogatz",
    "configuration_star",
    "degree_histogram",
]

#: pair count above which ``erdos_renyi_stream(method="auto")`` switches
#: from the exact one-draw-per-pair stream to geometric gap-jumping
#: (2^26 pairs ≈ 0.5 GB of uniforms — the last size where "exact" is
#: cheaper than the graph it generates)
ER_EXACT_MAX_PAIRS = 1 << 26


def erdos_renyi(n: int, p: float, seed: SeedLike = None) -> Graph:
    """G(n, p): each of the n(n−1)/2 possible edges appears with prob. p."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    g = Graph(nodes=range(n))
    if n < 2 or p == 0.0:
        return g
    # vectorized upper-triangle sampling: one uniform draw per pair (the
    # same stream as enumerating triu_indices), then only the hits are
    # decoded from linear index to (i, j) — row-major over the triangle,
    # so the edge set is identical to the per-pair loop this replaces
    n_pairs = n * (n - 1) // 2
    hits = np.flatnonzero(rng.random(n_pairs) < p)
    if hits.size:
        lengths = np.arange(n - 1, 0, -1, dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        i = np.searchsorted(starts, hits, side="right") - 1
        j = i + 1 + (hits - starts[i])
        g.add_edges_from(zip(i.tolist(), j.tolist()))
    return g


def erdos_renyi_stream(
    n: int,
    p: float,
    seed: SeedLike = None,
    chunk_pairs: int = 1 << 20,
    method: str = "auto",
):
    """G(n, p) as a stream of ``(u, v)`` int32 edge-array chunks.

    No :class:`Graph`, no full edge list — chunks feed straight into
    :meth:`repro.networks.mmapgraph.MmapGraph.from_edge_chunks`.  Edges
    are emitted in ascending linear pair index with ``u < v``, so the
    stream is self-loop- and duplicate-free by construction.

    ``method="exact"`` draws one uniform per pair in windows — since
    ``Generator.random`` consumes its bit stream call-by-call, the
    chunked draws reproduce :func:`erdos_renyi`'s single
    ``rng.random(n_pairs)`` exactly, giving the *identical edge set*
    for the same seed (pinned in the test suite).  ``method="gap"``
    samples the geometric gaps between hits (the
    :func:`~repro.networks.arraygraph.bernoulli_indices` trick), doing
    O(p·n²) work instead of O(n²) — the only viable path at 10^6+
    nodes; same ensemble, different draw stream.  ``"auto"`` picks
    ``exact`` up to :data:`ER_EXACT_MAX_PAIRS` pairs, ``gap`` beyond.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    if chunk_pairs < 1:
        raise ConfigurationError(
            f"chunk_pairs must be >= 1, got {chunk_pairs}"
        )
    if method not in ("auto", "exact", "gap"):
        raise ConfigurationError(
            f"method must be 'auto', 'exact' or 'gap', got {method!r}"
        )
    if n < 2 or p == 0.0:
        return
    rng = make_rng(seed)
    n_pairs = n * (n - 1) // 2
    if method == "auto":
        method = "exact" if n_pairs <= ER_EXACT_MAX_PAIRS else "gap"
    # linear pair index -> (i, j) decode table: row i spans
    # starts[i] .. starts[i] + (n - 1 - i)
    lengths = np.arange(n - 1, 0, -1, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))

    def decode(hits: np.ndarray):
        i = np.searchsorted(starts, hits, side="right") - 1
        j = i + 1 + (hits - starts[i])
        return i.astype(np.int32), j.astype(np.int32)

    if method == "exact":
        for lo in range(0, n_pairs, chunk_pairs):
            width = min(chunk_pairs, n_pairs - lo)
            hits = np.flatnonzero(rng.random(width) < p) + lo
            if hits.size:
                yield decode(hits)
        return
    if p >= 1.0:
        for lo in range(0, n_pairs, chunk_pairs):
            width = min(chunk_pairs, n_pairs - lo)
            yield decode(np.arange(lo, lo + width, dtype=np.int64))
        return
    pos = -1
    need = max(1024, int(chunk_pairs * p) + 16)
    while True:
        gaps = rng.geometric(p, size=need)
        hits = np.cumsum(gaps) + pos
        if len(hits) == 0 or hits[-1] >= n_pairs:
            hits = hits[hits < n_pairs]
            if hits.size:
                yield decode(hits)
            return
        yield decode(hits)
        pos = int(hits[-1])


def _ba_edges(n: int, m: int, rng):
    """BA edges in chronological order (shared draw/emit core).

    The preferential-attachment multiset lives in a preallocated int32
    array instead of a Python list — the list version boxed ~2·n·m ints
    (~45 bytes each), dominating the generator's footprint.  Draw
    sequence (``rng.integers`` bounds, target-set insertion order) is
    identical to the historical list implementation, so adjacency is
    pinned byte-for-byte.
    """
    # seed clique of m+1 nodes so every early node has degree >= m
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            yield u, v
    # final multiset length: m entries per seed node, then m targets +
    # m self-copies per attached node
    total = (m + 1) * m + 2 * m * (n - m - 1)
    rep = np.empty(total, dtype=np.int32)
    fill = 0
    for u in range(m + 1):
        rep[fill:fill + m] = u
        fill += m
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = int(rep[rng.integers(fill)])
            targets.add(pick)
        for t in targets:
            yield new, t
            rep[fill] = t
            fill += 1
        rep[fill:fill + m] = new
        fill += m


def barabasi_albert(n: int, m: int, seed: SeedLike = None) -> Graph:
    """BA preferential attachment: each new node links to ``m`` existing
    nodes chosen proportionally to their degree.

    Produces the scale-free degree distribution (P(k) ~ k^-3) whose hubs
    make the network robust to random failure but fragile to targeted
    attack.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if n < m + 1:
        raise ConfigurationError(f"n must be >= m+1 = {m + 1}, got {n}")
    rng = make_rng(seed)
    g = Graph(nodes=range(n))
    # the attachment draws never read the graph, so edges stream into
    # one bulk insert in chronological order — identical draws,
    # identical adjacency
    g.add_edges_from(_ba_edges(n, m, rng))
    return g


def barabasi_albert_stream(
    n: int, m: int, seed: SeedLike = None, chunk_edges: int = 1 << 20
):
    """BA edges as ``(u, v)`` int32 array chunks, no :class:`Graph`.

    Runs the exact :func:`barabasi_albert` draw sequence (same seed →
    same edge stream, pinned in the test suite) but buffers edges into
    fixed-size array chunks for
    :meth:`repro.networks.mmapgraph.MmapGraph.from_edge_chunks`.  Every
    edge appears once with a fresh endpoint, so the stream is
    duplicate- and self-loop-free by construction.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if n < m + 1:
        raise ConfigurationError(f"n must be >= m+1 = {m + 1}, got {n}")
    if chunk_edges < 1:
        raise ConfigurationError(
            f"chunk_edges must be >= 1, got {chunk_edges}"
        )
    rng = make_rng(seed)
    buf_u = np.empty(chunk_edges, dtype=np.int32)
    buf_v = np.empty(chunk_edges, dtype=np.int32)
    fill = 0
    for u, v in _ba_edges(n, m, rng):
        buf_u[fill] = u
        buf_v[fill] = v
        fill += 1
        if fill == chunk_edges:
            yield buf_u.copy(), buf_v.copy()
            fill = 0
    if fill:
        yield buf_u[:fill].copy(), buf_v[:fill].copy()


def watts_strogatz(n: int, k: int, p: float, seed: SeedLike = None) -> Graph:
    """WS small-world: ring lattice of degree ``k`` with rewiring prob ``p``."""
    if k < 2 or k % 2 != 0:
        raise ConfigurationError(f"k must be a positive even integer, got {k}")
    if n <= k:
        raise ConfigurationError(f"n must exceed k, got n={n}, k={k}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    g = Graph(nodes=range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            g.add_edge(u, (u + offset) % n)
    if p == 0.0:
        return g
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < p and g.has_edge(u, v):
                candidates = [w for w in range(n) if w != u and not g.has_edge(u, w)]
                if not candidates:
                    continue
                w = candidates[rng.integers(len(candidates))]
                g.remove_edge(u, v)
                g.add_edge(u, w)
    return g


def configuration_star(n_hubs: int, leaves_per_hub: int) -> Graph:
    """A deterministic hub-and-spoke graph: extreme scale-free caricature.

    Useful for analytic sanity checks: removing the ``n_hubs`` hubs
    shatters the graph completely.
    """
    if n_hubs < 1:
        raise ConfigurationError(f"n_hubs must be >= 1, got {n_hubs}")
    if leaves_per_hub < 1:
        raise ConfigurationError(
            f"leaves_per_hub must be >= 1, got {leaves_per_hub}"
        )
    g = Graph()
    node = 0
    hubs = []
    for _ in range(n_hubs):
        hub = node
        node += 1
        hubs.append(hub)
        g.add_node(hub)
        for _ in range(leaves_per_hub):
            g.add_edge(hub, node)
            node += 1
    # chain the hubs so the pristine graph is connected
    for a, b in zip(hubs, hubs[1:]):
        g.add_edge(a, b)
    return g


def degree_histogram(g: Graph) -> np.ndarray:
    """counts[k] = number of nodes of degree k (length = max degree + 1)."""
    degrees = list(g.degrees().values())
    if not degrees:
        return np.zeros(1, dtype=int)
    return np.bincount(np.asarray(degrees, dtype=np.intp))
