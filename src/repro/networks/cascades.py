"""Load-redistribution cascading failures (Motter–Lai style).

Paper §4.5 points at cascading failures in decentralized systems ("a
small disturbance or noise at the critical state could cause cascading
failures of the system leading to a large disaster, such as Northeast
blackout of 2003") and asks whether modularization contains damage.

Model: every node carries an initial load (its betweenness proxy:
degree-weighted load) and a capacity ``(1 + tolerance) × load``.
Failing a node redistributes its load equally to its live neighbours;
overloads fail in waves.  :func:`modularize` cuts a graph into
communities with few bridges, the design principle the paper suggests
("to modularize a large system into smaller independent components").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .engine import NetworkEngine, make_network_engine
from .graph import Graph

__all__ = [
    "CascadeResult",
    "LoadCascadeModel",
    "ProbabilisticCascadeModel",
    "modular_graph",
]


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of one cascade: which nodes failed, in how many waves."""

    failed: frozenset
    waves: int
    initial_failures: frozenset

    @property
    def cascade_size(self) -> int:
        """Total failed nodes including the seeds."""
        return len(self.failed)

    def damage_fraction(self, n_nodes: int) -> float:
        """Failed share of the whole system."""
        if n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be > 0, got {n_nodes}")
        return len(self.failed) / n_nodes


class LoadCascadeModel:
    """Degree-load cascade with a uniform capacity tolerance.

    ``tolerance`` is the spare-capacity margin alpha: capacity_i =
    (1 + alpha) × load_i.  Small alpha = a system tuned near its critical
    point (the Bak regime); large alpha = generous redundancy.
    """

    def __init__(
        self,
        g: Graph,
        tolerance: float = 0.2,
        engine: "str | NetworkEngine | None" = None,
    ):
        if tolerance < 0:
            raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
        if g.n_nodes == 0:
            raise ConfigurationError("cascade model needs a non-empty graph")
        self.graph = g
        self.tolerance = tolerance
        self.engine = make_network_engine(engine)
        self.initial_load: Dict[object, float] = {
            node: float(max(g.degree(node), 1)) for node in g.nodes()
        }
        self.capacity: Dict[object, float] = {
            node: (1.0 + tolerance) * load
            for node, load in self.initial_load.items()
        }

    def trigger(self, seeds: Iterable[object]) -> CascadeResult:
        """Fail ``seeds`` and propagate overloads to exhaustion."""
        seeds = frozenset(seeds)
        unknown = [s for s in seeds if s not in self.graph]
        if unknown:
            raise ConfigurationError(
                f"seed nodes not in graph: {sorted(map(repr, unknown))[:5]}"
            )
        failed, waves = self.engine.load_cascade(
            self.graph, self.initial_load, self.capacity, seeds
        )
        return CascadeResult(
            failed=frozenset(failed), waves=waves, initial_failures=seeds
        )

    def random_trigger(self, seed: SeedLike = None) -> CascadeResult:
        """Fail one uniformly random node."""
        rng = make_rng(seed)
        nodes = list(self.graph.nodes())
        return self.trigger([nodes[rng.integers(len(nodes))]])

    def hub_trigger(self) -> CascadeResult:
        """Fail the highest-degree node (worst single-point failure)."""
        degrees = self.graph.degrees()
        hub = max(degrees, key=lambda n: (degrees[n], repr(n)))
        return self.trigger([hub])


class ProbabilisticCascadeModel:
    """Independent-cascade failure spread: each failed node knocks out each
    live neighbour with probability ``spread_p``, in waves.

    This is the natural model for the paper's modularization principle
    (§4.5): damage crossing between modules must traverse the few bridge
    edges, so sparse inter-module connectivity statistically contains
    cascades inside one module.  (The conserved-load model above instead
    *funnels* load across bridges — a different, complementary failure
    physics.)
    """

    def __init__(
        self,
        g: Graph,
        spread_p: float,
        engine: "str | NetworkEngine | None" = None,
    ):
        if not 0.0 <= spread_p <= 1.0:
            raise ConfigurationError(
                f"spread_p must be in [0, 1], got {spread_p}"
            )
        if g.n_nodes == 0:
            raise ConfigurationError("cascade model needs a non-empty graph")
        self.graph = g
        self.spread_p = spread_p
        self.engine = make_network_engine(engine)

    def trigger(self, seeds: Iterable[object],
                seed: SeedLike = None) -> CascadeResult:
        """Fail ``seeds``; propagate wave by wave until no new failures."""
        rng = make_rng(seed)
        seeds = frozenset(seeds)
        unknown = [s for s in seeds if s not in self.graph]
        if unknown:
            raise ConfigurationError(
                f"seed nodes not in graph: {sorted(map(repr, unknown))[:5]}"
            )
        failed, waves = self.engine.spread_cascade(
            self.graph, self.spread_p, seeds, rng
        )
        return CascadeResult(
            failed=frozenset(failed), waves=waves, initial_failures=seeds
        )

    def mean_damage(self, trials: int = 50, seed: SeedLike = None) -> float:
        """Mean damage fraction over random single-seed triggers."""
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        rng = make_rng(seed)
        nodes = list(self.graph.nodes())
        total = 0.0
        for _ in range(trials):
            start = nodes[rng.integers(len(nodes))]
            result = self.trigger([start], rng)
            total += result.damage_fraction(self.graph.n_nodes)
        return total / trials


def modular_graph(
    n_modules: int,
    module_size: int,
    intra_p: float = 0.4,
    bridges: int = 1,
    seed: SeedLike = None,
) -> Graph:
    """Random modular graph: dense modules, ``bridges`` links between
    consecutive modules.

    The modularization ablation (E20) compares cascade sizes on this
    against an equally dense unpartitioned graph: bridges act as
    firebreaks that contain load cascades inside one module.
    """
    if n_modules < 1:
        raise ConfigurationError(f"n_modules must be >= 1, got {n_modules}")
    if module_size < 2:
        raise ConfigurationError(f"module_size must be >= 2, got {module_size}")
    if not 0 < intra_p <= 1:
        raise ConfigurationError(f"intra_p must be in (0, 1], got {intra_p}")
    if bridges < 0:
        raise ConfigurationError(f"bridges must be >= 0, got {bridges}")
    rng = make_rng(seed)
    g = Graph(nodes=range(n_modules * module_size))
    for m in range(n_modules):
        base = m * module_size
        members = list(range(base, base + module_size))
        # spanning cycle keeps each module internally connected
        for a, b in zip(members, members[1:] + members[:1]):
            if a != b:
                g.add_edge(a, b)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if not g.has_edge(u, v) and rng.random() < intra_p:
                    g.add_edge(u, v)
    for m in range(n_modules - 1):
        this_base = m * module_size
        next_base = (m + 1) * module_size
        for _ in range(bridges):
            u = this_base + int(rng.integers(module_size))
            v = next_base + int(rng.integers(module_size))
            if not g.has_edge(u, v):
                g.add_edge(u, v)
    return g
