"""Network engine selection: reference object kernels vs CSR array kernels.

Mirrors :func:`repro.agents.arrayengine.make_engine` for the network
substrate.  :func:`make_network_engine` resolves an engine ``kind``
(``"object"``, ``"array"``, or ``"mmap"``) from its argument or the
``REPRO_NETWORK_ENGINE`` environment variable, defaulting to
``"object"`` so existing runs are bit-for-bit unchanged until a caller
opts in.  :func:`~repro.networks.percolation.percolation_curve`,
:class:`~repro.networks.cascades.LoadCascadeModel` /
:class:`~repro.networks.cascades.ProbabilisticCascadeModel`,
:class:`~repro.networks.epidemics.SISModel` /
:class:`~repro.networks.epidemics.SIRModel`, and
:class:`~repro.networks.healing.NetworkRecoverySimulator` all dispatch
their hot loops through the resolved engine.

The object engine hosts the original dict-of-sets loops verbatim (same
RNG draw order, same float accumulation order).  The array engine runs
the CSR kernels from :mod:`repro.networks.arraygraph`; deterministic
quantities (component sizes, percolation curves, load-cascade failure
sets, healing quality traces) match the object engine exactly, while
stochastic spreading (probabilistic cascades, SIS/SIR) draws its
randomness in frontier batches and therefore matches statistically over
seeds rather than draw-for-draw — the same equivalence contract as the
agents array engine.  The mmap engine runs the chunked out-of-core
kernels from :mod:`repro.networks.mmapgraph` over memory-mapped CSR
files; its outputs — deterministic *and* stochastic — are
byte-identical to the array engine on the same graph, and the array
engine degrades to it (rather than OOM-ing) when the supervisor's
memory budget says the in-RAM kernels won't fit.  All engines report
``net.*`` timers/counters through :mod:`repro.runtime.trace`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Sequence, Set

import numpy as np

from ..runtime import supervisor, trace
from ..runtime.engines import resolve_engine_kind
from .arraygraph import (
    ArrayGraph,
    as_arraygraph,
    bernoulli_indices,
    gather_rows,
    newman_ziff_giant_sizes,
)
from .graph import Graph
from .mmapgraph import (
    MmapGraph,
    as_mmapgraph,
    chunked_newman_ziff_giant_sizes,
    derive_chunk_elems,
    estimate_graph_bytes,
    frontier_slices,
)

__all__ = [
    "ArrayNetworkEngine",
    "MmapNetworkEngine",
    "NetworkEngine",
    "ObjectNetworkEngine",
    "make_network_engine",
]


class NetworkEngine(ABC):
    """One implementation of the network hot loops (see module docs)."""

    name: str

    def ordering_graph(self, g: "Graph | ArrayGraph"):
        """The graph view attack strategies should rank (engine-preferred)."""
        return g

    @abstractmethod
    def percolation_giant_sizes(
        self, g, order: Sequence[object], checkpoints: Sequence[int]
    ) -> list[int]:
        """Giant sizes ``[intact] + [after i removals for i in checkpoints]``."""

    @abstractmethod
    def load_cascade(
        self,
        graph,
        initial_load: Dict[object, float],
        capacity: Dict[object, float],
        seeds: frozenset,
    ) -> tuple[Set[object], int]:
        """Propagate a load-redistribution cascade; ``(failed, waves)``."""

    @abstractmethod
    def spread_cascade(
        self, graph, spread_p: float, seeds: frozenset, rng
    ) -> tuple[Set[object], int]:
        """Propagate an independent-cascade failure; ``(failed, waves)``."""

    @abstractmethod
    def sis(
        self, graph, beta: float, gamma: float, immune: frozenset,
        infected: Set[object], steps: int, rng,
    ) -> tuple[list[int], Set[object], int]:
        """SIS dynamics; ``(counts, final_infected, total_ever)``."""

    @abstractmethod
    def sir(
        self, graph, beta: float, gamma: float, immune: frozenset,
        infected: Set[object], max_steps: int, rng,
    ) -> tuple[list[int], Set[object], int]:
        """SIR dynamics; ``(counts, final_infected, total_ever)``."""

    @abstractmethod
    def healing_episode(
        self, graph, to_remove: Sequence[object], repairs_per_step: int,
        horizon: int, shock_time: int,
    ) -> tuple[list[float], list[float], bool]:
        """Attack-and-heal quality series; ``(times, quality, recovered)``."""


class ObjectNetworkEngine(NetworkEngine):
    """The reference dict-of-sets implementation (pre-array behavior)."""

    name = "object"

    @staticmethod
    def _graph(g) -> Graph:
        return (
            g.to_graph() if isinstance(g, (ArrayGraph, MmapGraph)) else g
        )

    def percolation_giant_sizes(self, g, order, checkpoints):
        g = self._graph(g)
        tr = trace.current()
        with tr.timer("net.percolation.object"):
            wanted = set(checkpoints)
            work = g.copy()
            sizes = [work.giant_component_size()]
            for i, node in enumerate(order, start=1):
                work.remove_node(node)
                if i in wanted:
                    sizes.append(work.giant_component_size())
        tr.count("net.curves.object")
        return sizes

    def load_cascade(self, graph, initial_load, capacity, seeds):
        graph = self._graph(graph)
        tr = trace.current()
        with tr.timer("net.cascade.object"):
            load = dict(initial_load)
            failed: set = set()
            wave: set = set(seeds)
            waves = 0
            while wave:
                waves += 1
                # redistribute each failing node's load to live neighbours
                for node in wave:
                    failed.add(node)
                for node in wave:
                    neighbors = [
                        v for v in graph.neighbors(node) if v not in failed
                    ]
                    if not neighbors:
                        continue
                    share = load[node] / len(neighbors)
                    for v in neighbors:
                        load[v] += share
                wave = {
                    node
                    for node in graph.nodes()
                    if node not in failed and load[node] > capacity[node]
                }
        tr.count("net.cascades.object")
        return failed, waves

    def spread_cascade(self, graph, spread_p, seeds, rng):
        graph = self._graph(graph)
        tr = trace.current()
        with tr.timer("net.cascade.object"):
            failed: set = set(seeds)
            wave = set(seeds)
            waves = 0
            while wave:
                waves += 1
                nxt: set = set()
                for node in wave:
                    for neighbor in graph.neighbors(node):
                        if neighbor not in failed and \
                                rng.random() < spread_p:
                            nxt.add(neighbor)
                failed |= nxt
                wave = nxt
        tr.count("net.cascades.object")
        return failed, waves

    def sis(self, graph, beta, gamma, immune, infected, steps, rng):
        graph = self._graph(graph)
        tr = trace.current()
        with tr.timer("net.epidemic.object"):
            ever = set(infected)
            counts = [len(infected)]
            for _ in range(steps):
                if not infected:
                    break
                new_infections: Set[object] = set()
                for node in infected:
                    for neighbor in graph.neighbors(node):
                        if (
                            neighbor not in infected
                            and neighbor not in immune
                            and rng.random() < beta
                        ):
                            new_infections.add(neighbor)
                recoveries = {n for n in infected if rng.random() < gamma}
                infected = (infected - recoveries) | new_infections
                ever |= new_infections
                counts.append(len(infected))
        tr.count("net.epidemic.runs.object")
        tr.count("net.epidemic.steps.object", len(counts) - 1)
        return counts, infected, len(ever)

    def sir(self, graph, beta, gamma, immune, infected, max_steps, rng):
        graph = self._graph(graph)
        tr = trace.current()
        with tr.timer("net.epidemic.object"):
            recovered: Set[object] = set()
            ever = set(infected)
            counts = [len(infected)]
            for _ in range(max_steps):
                if not infected:
                    break
                new_infections: Set[object] = set()
                for node in infected:
                    for neighbor in graph.neighbors(node):
                        if (
                            neighbor not in infected
                            and neighbor not in recovered
                            and neighbor not in immune
                            and rng.random() < beta
                        ):
                            new_infections.add(neighbor)
                recoveries = {n for n in infected if rng.random() < gamma}
                recovered |= recoveries
                infected = (infected - recoveries) | new_infections
                ever |= new_infections
                counts.append(len(infected))
        tr.count("net.epidemic.runs.object")
        tr.count("net.epidemic.steps.object", len(counts) - 1)
        return counts, infected, len(ever)

    def healing_episode(self, graph, to_remove, repairs_per_step,
                        horizon, shock_time):
        graph = self._graph(graph)
        tr = trace.current()
        with tr.timer("net.healing.object"):
            n = graph.n_nodes
            original_edges = list(graph.edges())
            work = graph.copy()
            removed: list = []
            times: list[float] = []
            quality: list[float] = []
            for t in range(horizon):
                if t == shock_time:
                    for node in to_remove:
                        work.remove_node(node)
                        removed.append(node)
                elif t > shock_time and repairs_per_step > 0 and removed:
                    # triage: restore the most connective victims first
                    for _ in range(min(repairs_per_step, len(removed))):
                        node = removed.pop(0)
                        work.add_node(node)
                        for u, v in original_edges:
                            if u == node and v in work:
                                work.add_edge(u, v)
                            elif v == node and u in work:
                                work.add_edge(u, v)
                times.append(float(t))
                quality.append(100.0 * work.giant_component_size() / n)
            fully = not removed and work.giant_component_size() == n
        tr.count("net.healing.runs.object")
        return times, quality, fully


class ArrayNetworkEngine(NetworkEngine):
    """CSR array kernels (see :mod:`repro.networks.arraygraph`).

    A MAPE memory guard fronts every kernel: when the supervisor carries
    a ``memory_budget_mb`` and :func:`~repro.networks.mmapgraph.
    estimate_graph_bytes` says the in-RAM kernels would exceed it — or
    when the input is already an :class:`~repro.networks.mmapgraph.
    MmapGraph` — the call degrades to the chunked
    :class:`MmapNetworkEngine` instead of OOM-ing (the network mirror of
    the bit-CSP compile pre-emption).
    """

    name = "array"

    @staticmethod
    def _mmap_delegate(g) -> "MmapNetworkEngine | None":
        """The chunked engine to run instead, or None to stay in RAM."""
        if isinstance(g, MmapGraph):
            return MmapNetworkEngine()
        estimate = estimate_graph_bytes(g)
        budget = supervisor.current().memory_budget_bytes()
        if (
            estimate is not None
            and budget is not None
            and estimate > budget
        ):
            tr = trace.current()
            tr.count("net.mmap.degrades")
            tr.count("supervisor.preemptions")
            tr.warning(
                "in-RAM network kernels pre-empted by memory budget; "
                "degrading to chunked mmap kernels",
                estimated_bytes=estimate,
                budget_bytes=budget,
            )
            return MmapNetworkEngine()
        return None

    def ordering_graph(self, g):
        mm = self._mmap_delegate(g)
        if mm is not None:
            return mm.ordering_graph(g)
        return as_arraygraph(g)

    def percolation_giant_sizes(self, g, order, checkpoints):
        mm = self._mmap_delegate(g)
        if mm is not None:
            return mm.percolation_giant_sizes(g, order, checkpoints)
        ag = as_arraygraph(g)
        tr = trace.current()
        with tr.timer("net.percolation.array"):
            n = ag.n_nodes
            order_idx = ag.indices_of(order)
            # removals evaluated in reverse as Newman–Ziff additions
            sizes = newman_ziff_giant_sizes(
                ag.indptr, ag.indices, order_idx[::-1]
            )
            out = [int(sizes[n])]
            out.extend(int(sizes[n - i]) for i in checkpoints)
        tr.count("net.curves.array")
        tr.count("net.nz_nodes.array", n)
        return out

    def load_cascade(self, graph, initial_load, capacity, seeds):
        mm = self._mmap_delegate(graph)
        if mm is not None:
            return mm.load_cascade(graph, initial_load, capacity, seeds)
        ag = as_arraygraph(graph)
        tr = trace.current()
        with tr.timer("net.cascade.array"):
            n = ag.n_nodes
            labels = ag.labels
            load = np.asarray(
                [initial_load[lab] for lab in labels], dtype=float
            )
            cap = np.asarray(
                [capacity[lab] for lab in labels], dtype=float
            )
            failed = np.zeros(n, dtype=bool)
            wave = np.sort(ag.indices_of(seeds))
            waves = 0
            while wave.size:
                waves += 1
                failed[wave] = True
                flat, counts = gather_rows(ag.indptr, ag.indices, wave)
                flat = flat.astype(np.int64)
                live = ~failed[flat]
                owner_pos = np.repeat(
                    np.arange(len(wave), dtype=np.int64), counts
                )
                live_counts = np.bincount(
                    owner_pos, weights=live, minlength=len(wave)
                )
                share = np.zeros(len(wave))
                has_live = live_counts > 0
                share[has_live] = load[wave[has_live]] / \
                    live_counts[has_live]
                np.add.at(load, flat[live], np.repeat(share, counts)[live])
                wave = np.flatnonzero(~failed & (load > cap))
            failed_labels = {labels[int(i)] for i in np.flatnonzero(failed)}
        tr.count("net.cascades.array")
        return failed_labels, waves

    def spread_cascade(self, graph, spread_p, seeds, rng):
        mm = self._mmap_delegate(graph)
        if mm is not None:
            return mm.spread_cascade(graph, spread_p, seeds, rng)
        ag = as_arraygraph(graph)
        tr = trace.current()
        with tr.timer("net.cascade.array"):
            labels = ag.labels
            failed = np.zeros(ag.n_nodes, dtype=bool)
            wave = np.sort(ag.indices_of(seeds))
            failed[wave] = True
            waves = 0
            while wave.size:
                waves += 1
                flat, _ = gather_rows(ag.indptr, ag.indices, wave)
                flat = flat.astype(np.int64)
                candidates = flat[~failed[flat]]
                hits = bernoulli_indices(rng, candidates.size, spread_p)
                new = np.unique(candidates[hits])
                failed[new] = True
                wave = new
            failed_labels = {labels[int(i)] for i in np.flatnonzero(failed)}
        tr.count("net.cascades.array")
        return failed_labels, waves

    def _epidemic(self, ag, beta, gamma, immune_mask, infected_mask,
                  max_steps, rng, recovered_mask):
        """Shared SIS/SIR frontier loop (SIR passes a recovered mask)."""
        indptr, indices = ag.indptr, ag.indices
        ever = infected_mask.copy()
        counts = [int(infected_mask.sum())]
        for _ in range(max_steps):
            infected_idx = np.flatnonzero(infected_mask)
            if infected_idx.size == 0:
                break
            flat, _ = gather_rows(indptr, indices, infected_idx)
            flat = flat.astype(np.int64)
            susceptible = ~infected_mask[flat] & ~immune_mask[flat]
            if recovered_mask is not None:
                susceptible &= ~recovered_mask[flat]
            candidates = flat[susceptible]
            hits = bernoulli_indices(rng, candidates.size, beta)
            new = candidates[hits]
            recs = bernoulli_indices(rng, infected_idx.size, gamma)
            recovered_now = infected_idx[recs]
            infected_mask[recovered_now] = False
            if recovered_mask is not None:
                recovered_mask[recovered_now] = True
            infected_mask[new] = True
            ever[new] = True
            counts.append(int(infected_mask.sum()))
        return counts, infected_mask, int(ever.sum())

    def _run_epidemic(self, graph, beta, gamma, immune, infected,
                      max_steps, rng, with_recovered):
        mm = self._mmap_delegate(graph)
        if mm is not None:
            return mm._run_epidemic(
                graph, beta, gamma, immune, infected, max_steps, rng,
                with_recovered,
            )
        ag = as_arraygraph(graph)
        tr = trace.current()
        with tr.timer("net.epidemic.array"):
            n = ag.n_nodes
            immune_mask = np.zeros(n, dtype=bool)
            if immune:
                immune_mask[ag.indices_of(immune)] = True
            infected_mask = np.zeros(n, dtype=bool)
            if infected:
                infected_mask[ag.indices_of(infected)] = True
            recovered_mask = (
                np.zeros(n, dtype=bool) if with_recovered else None
            )
            counts, infected_mask, ever = self._epidemic(
                ag, beta, gamma, immune_mask, infected_mask,
                max_steps, rng, recovered_mask,
            )
            labels = ag.labels
            final = {
                labels[int(i)] for i in np.flatnonzero(infected_mask)
            }
        tr.count("net.epidemic.runs.array")
        tr.count("net.epidemic.steps.array", len(counts) - 1)
        return counts, final, ever

    def sis(self, graph, beta, gamma, immune, infected, steps, rng):
        return self._run_epidemic(
            graph, beta, gamma, immune, infected, steps, rng,
            with_recovered=False,
        )

    def sir(self, graph, beta, gamma, immune, infected, max_steps, rng):
        return self._run_epidemic(
            graph, beta, gamma, immune, infected, max_steps, rng,
            with_recovered=True,
        )

    def healing_episode(self, graph, to_remove, repairs_per_step,
                        horizon, shock_time):
        mm = self._mmap_delegate(graph)
        if mm is not None:
            return mm.healing_episode(
                graph, to_remove, repairs_per_step, horizon, shock_time
            )
        ag = as_arraygraph(graph)
        tr = trace.current()
        with tr.timer("net.healing.array"):
            n = ag.n_nodes
            removed_idx = ag.indices_of(to_remove)
            n_removed = len(removed_idx)
            base = np.ones(n, dtype=bool)
            base[removed_idx] = False
            # one Newman–Ziff pass: survivors first, then victims restored
            # in triage order — sizes[k] is the giant with k nodes healed
            sizes = newman_ziff_giant_sizes(
                ag.indptr, ag.indices, removed_idx,
                base=np.flatnonzero(base),
            )
            full = int(sizes[n_removed])
            times: list[float] = []
            quality: list[float] = []
            restored = 0
            for t in range(horizon):
                if t == shock_time:
                    giant = int(sizes[0])
                elif t > shock_time:
                    if repairs_per_step > 0 and restored < n_removed:
                        restored = min(
                            n_removed, restored + repairs_per_step
                        )
                    giant = int(sizes[restored])
                else:
                    giant = full
                times.append(float(t))
                quality.append(100.0 * giant / n)
            fully = restored == n_removed and full == n
        tr.count("net.healing.runs.array")
        return times, quality, fully


class MmapNetworkEngine(NetworkEngine):
    """Chunked kernels over memory-mapped CSR graphs (out-of-core).

    Every hot loop of :class:`ArrayNetworkEngine` re-expressed as a walk
    over fixed-size blocks of the (memory-mapped) ``indices`` array, so
    peak RSS is O(n + block) instead of O(n + m·45-bytes-per-boxed-int):
    Newman–Ziff percolation and healing stream additions through
    :func:`~repro.networks.mmapgraph.chunked_newman_ziff_giant_sizes`,
    cascades and SIS/SIR expand their frontiers block-by-block with a
    two-pass draw that consumes the RNG exactly as the single-gather
    array kernels do.  Deterministic outputs (curves, cascade failure
    sets, healing traces) and stochastic draws alike are byte-identical
    to the array engine on the same graph — this kind trades wall-clock
    (~2-4x on in-RAM sizes) for a bounded memory envelope, which is why
    the supervisor degrades *to* it rather than selecting it by default.

    The block size comes from the supervisor's ``memory_budget_mb`` via
    :func:`~repro.networks.mmapgraph.derive_chunk_elems` (or an explicit
    ``block_elems``, used by the equivalence tests to sweep block
    boundaries).
    """

    name = "mmap"

    def __init__(self, block_elems: "int | None" = None):
        self._block_elems = block_elems

    def _block(self) -> int:
        if self._block_elems is not None:
            return self._block_elems
        return derive_chunk_elems(
            supervisor.current().memory_budget_bytes()
        )

    def ordering_graph(self, g):
        return as_mmapgraph(g)

    def percolation_giant_sizes(self, g, order, checkpoints):
        mg = as_mmapgraph(g)
        tr = trace.current()
        with tr.timer("net.percolation.mmap"):
            n = mg.n_nodes
            order_idx = mg.indices_of(order)
            # removals evaluated in reverse as Newman–Ziff additions,
            # neighbor lists arriving in budget-sized blocks
            sizes = chunked_newman_ziff_giant_sizes(
                mg.indptr, mg.indices, order_idx[::-1],
                block_elems=self._block(),
            )
            out = [int(sizes[n])]
            out.extend(int(sizes[n - i]) for i in checkpoints)
        tr.count("net.curves.mmap")
        tr.count("net.nz_nodes.mmap", n)
        return out

    def load_cascade(self, graph, initial_load, capacity, seeds):
        mg = as_mmapgraph(graph)
        tr = trace.current()
        with tr.timer("net.cascade.mmap"):
            n = mg.n_nodes
            labels = mg.labels
            load = np.asarray(
                [initial_load[lab] for lab in labels], dtype=float
            )
            cap = np.asarray(
                [capacity[lab] for lab in labels], dtype=float
            )
            failed = np.zeros(n, dtype=bool)
            wave = np.sort(mg.indices_of(seeds))
            waves = 0
            block = self._block()
            indptr, indices = mg.indptr, mg.indices
            while wave.size:
                waves += 1
                failed[wave] = True
                # snapshot pre-redistribution loads: later blocks must
                # compute shares from the same values the array engine's
                # single gather reads, not from partially-updated loads
                wave_load = load[wave]
                for a, b in frontier_slices(indptr, wave, block):
                    rows = wave[a:b]
                    flat, counts = gather_rows(indptr, indices, rows)
                    flat = flat.astype(np.int64)
                    live = ~failed[flat]
                    owner_pos = np.repeat(
                        np.arange(len(rows), dtype=np.int64), counts
                    )
                    live_counts = np.bincount(
                        owner_pos, weights=live, minlength=len(rows)
                    )
                    share = np.zeros(len(rows))
                    has_live = live_counts > 0
                    share[has_live] = wave_load[a:b][has_live] / \
                        live_counts[has_live]
                    np.add.at(
                        load, flat[live], np.repeat(share, counts)[live]
                    )
                wave = np.flatnonzero(~failed & (load > cap))
            failed_labels = {labels[int(i)] for i in np.flatnonzero(failed)}
        tr.count("net.cascades.mmap")
        return failed_labels, waves

    def _frontier_hits(self, mg, rows, candidate_mask, p, rng, block):
        """``candidates[hits]`` of the array kernels, without the gather.

        Pass 1 counts candidates per block (mask state frozen by the
        caller until this returns), a single
        :func:`~repro.networks.arraygraph.bernoulli_indices` draw then
        covers the whole frontier — the exact RNG consumption of the
        single-gather array kernels — and pass 2 re-gathers only the
        blocks holding hits to emit their candidates in frontier order.
        """
        indptr, indices = mg.indptr, mg.indices
        bounds = list(frontier_slices(indptr, rows, block))
        counts = np.empty(len(bounds), dtype=np.int64)
        for k, (a, b) in enumerate(bounds):
            flat, _ = gather_rows(indptr, indices, rows[a:b])
            counts[k] = int(
                np.count_nonzero(candidate_mask(flat.astype(np.int64)))
            )
        hits = bernoulli_indices(rng, int(counts.sum()), p)
        if len(hits) == 0:
            return np.empty(0, dtype=np.int64)
        out = []
        offsets = np.concatenate(([0], np.cumsum(counts)))
        for k, (a, b) in enumerate(bounds):
            sel = hits[(hits >= offsets[k]) & (hits < offsets[k + 1])]
            if len(sel) == 0:
                continue
            flat, _ = gather_rows(indptr, indices, rows[a:b])
            flat = flat.astype(np.int64)
            cands = flat[candidate_mask(flat)]
            out.append(cands[sel - offsets[k]])
        return np.concatenate(out)

    def spread_cascade(self, graph, spread_p, seeds, rng):
        mg = as_mmapgraph(graph)
        tr = trace.current()
        with tr.timer("net.cascade.mmap"):
            labels = mg.labels
            failed = np.zeros(mg.n_nodes, dtype=bool)
            wave = np.sort(mg.indices_of(seeds))
            failed[wave] = True
            waves = 0
            block = self._block()
            while wave.size:
                waves += 1
                hit = self._frontier_hits(
                    mg, wave, lambda flat: ~failed[flat],
                    spread_p, rng, block,
                )
                new = np.unique(hit)
                failed[new] = True
                wave = new
            failed_labels = {labels[int(i)] for i in np.flatnonzero(failed)}
        tr.count("net.cascades.mmap")
        return failed_labels, waves

    def _epidemic(self, mg, beta, gamma, immune_mask, infected_mask,
                  max_steps, rng, recovered_mask):
        """Shared SIS/SIR chunked-frontier loop (SIR passes a mask)."""
        block = self._block()
        ever = infected_mask.copy()
        counts = [int(infected_mask.sum())]

        def candidate_mask(flat):
            m = ~infected_mask[flat] & ~immune_mask[flat]
            if recovered_mask is not None:
                m &= ~recovered_mask[flat]
            return m

        for _ in range(max_steps):
            infected_idx = np.flatnonzero(infected_mask)
            if infected_idx.size == 0:
                break
            # masks are mutated only after both draws, so pass 1 and
            # pass 2 of the frontier see identical candidate sets
            new = self._frontier_hits(
                mg, infected_idx, candidate_mask, beta, rng, block
            )
            recs = bernoulli_indices(rng, infected_idx.size, gamma)
            recovered_now = infected_idx[recs]
            infected_mask[recovered_now] = False
            if recovered_mask is not None:
                recovered_mask[recovered_now] = True
            infected_mask[new] = True
            ever[new] = True
            counts.append(int(infected_mask.sum()))
        return counts, infected_mask, int(ever.sum())

    def _run_epidemic(self, graph, beta, gamma, immune, infected,
                      max_steps, rng, with_recovered):
        mg = as_mmapgraph(graph)
        tr = trace.current()
        with tr.timer("net.epidemic.mmap"):
            n = mg.n_nodes
            immune_mask = np.zeros(n, dtype=bool)
            if immune:
                immune_mask[mg.indices_of(immune)] = True
            infected_mask = np.zeros(n, dtype=bool)
            if infected:
                infected_mask[mg.indices_of(infected)] = True
            recovered_mask = (
                np.zeros(n, dtype=bool) if with_recovered else None
            )
            counts, infected_mask, ever = self._epidemic(
                mg, beta, gamma, immune_mask, infected_mask,
                max_steps, rng, recovered_mask,
            )
            labels = mg.labels
            final = {
                labels[int(i)] for i in np.flatnonzero(infected_mask)
            }
        tr.count("net.epidemic.runs.mmap")
        tr.count("net.epidemic.steps.mmap", len(counts) - 1)
        return counts, final, ever

    def sis(self, graph, beta, gamma, immune, infected, steps, rng):
        return self._run_epidemic(
            graph, beta, gamma, immune, infected, steps, rng,
            with_recovered=False,
        )

    def sir(self, graph, beta, gamma, immune, infected, max_steps, rng):
        return self._run_epidemic(
            graph, beta, gamma, immune, infected, max_steps, rng,
            with_recovered=True,
        )

    def healing_episode(self, graph, to_remove, repairs_per_step,
                        horizon, shock_time):
        mg = as_mmapgraph(graph)
        tr = trace.current()
        with tr.timer("net.healing.mmap"):
            n = mg.n_nodes
            removed_idx = mg.indices_of(to_remove)
            n_removed = len(removed_idx)
            base = np.ones(n, dtype=bool)
            base[removed_idx] = False
            sizes = chunked_newman_ziff_giant_sizes(
                mg.indptr, mg.indices, removed_idx,
                base=np.flatnonzero(base),
                block_elems=self._block(),
            )
            full = int(sizes[n_removed])
            times: list[float] = []
            quality: list[float] = []
            restored = 0
            for t in range(horizon):
                if t == shock_time:
                    giant = int(sizes[0])
                elif t > shock_time:
                    if repairs_per_step > 0 and restored < n_removed:
                        restored = min(
                            n_removed, restored + repairs_per_step
                        )
                    giant = int(sizes[restored])
                else:
                    giant = full
                times.append(float(t))
                quality.append(100.0 * giant / n)
            fully = restored == n_removed and full == n
        tr.count("net.healing.runs.mmap")
        return times, quality, fully


_ENGINES = {
    "object": ObjectNetworkEngine,
    "array": ArrayNetworkEngine,
    "mmap": MmapNetworkEngine,
}


def make_network_engine(
    kind: "str | NetworkEngine | None" = None,
) -> NetworkEngine:
    """Resolve a network engine: ``'object'``, ``'array'``, or ``'mmap'``.

    ``kind=None`` reads the ``REPRO_NETWORK_ENGINE`` environment variable
    and defaults to ``'object'``, preserving pre-array behavior unless a
    run opts in; an already-constructed engine passes through unchanged.
    Unrecognized values — passed directly or set in the environment —
    raise :class:`~repro.errors.EngineError` naming the valid choices
    (resolution shared with the other seams via
    :func:`repro.runtime.engines.resolve_engine_kind`; an installed MAPE
    supervisor may degrade ``array`` to ``object`` while its breaker is
    open).
    """
    if isinstance(kind, NetworkEngine):
        return kind
    return _ENGINES[resolve_engine_kind("networks", kind)]()
