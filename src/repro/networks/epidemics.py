"""Epidemic spreading and immunization on networks (paper §5.1).

The paper's virus scenario: a spreading agent on a scale-free network,
where hub connectivity that confers failure-robustness becomes a
vulnerability.  We provide discrete-time SIS and SIR dynamics and the two
canonical countermeasures — random immunization (useless on scale-free
nets until coverage is huge) and targeted hub immunization (cheaply
effective), the network form of the targeted-vs-random asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .engine import NetworkEngine, make_network_engine
from .graph import Graph

__all__ = ["EpidemicResult", "SISModel", "SIRModel", "immunize"]


@dataclass(frozen=True)
class EpidemicResult:
    """Time series and endpoint of one epidemic run."""

    infected_counts: np.ndarray
    final_infected: frozenset
    total_ever_infected: int
    steps: int

    def attack_rate(self, n_nodes: int) -> float:
        """Fraction of the population ever infected."""
        if n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be > 0, got {n_nodes}")
        return self.total_ever_infected / n_nodes

    @property
    def died_out(self) -> bool:
        """Whether the epidemic was extinct at the end of the run."""
        return len(self.final_infected) == 0


def immunize(g: Graph, fraction: float, strategy: str = "random",
             seed: SeedLike = None) -> frozenset:
    """Choose an immunized node set.

    ``strategy`` is ``"random"`` (uniform) or ``"targeted"`` (highest
    degree first).  Immunized nodes can never be infected.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    n_immune = int(round(fraction * g.n_nodes))
    if strategy == "random":
        rng = make_rng(seed)
        nodes = list(g.nodes())
        rng.shuffle(nodes)
        return frozenset(nodes[:n_immune])
    if strategy == "targeted":
        degrees = g.degrees()
        ranked = sorted(degrees, key=lambda n: (-degrees[n], repr(n)))
        return frozenset(ranked[:n_immune])
    raise ConfigurationError(
        f"unknown immunization strategy {strategy!r}; use 'random' or 'targeted'"
    )


class SISModel:
    """Discrete-time susceptible-infected-susceptible dynamics.

    Each step every infected node transmits to each susceptible neighbour
    with probability ``beta`` and then recovers (back to susceptible)
    with probability ``gamma``.  The effective spreading ratio
    beta/gamma against the network's epidemic threshold decides
    endemicity; on scale-free networks the threshold vanishes.
    """

    def __init__(self, g: Graph, beta: float, gamma: float,
                 immune: Iterable[object] = (),
                 engine: "str | NetworkEngine | None" = None):
        _validate_rates(beta, gamma)
        self.graph = g
        self.beta = beta
        self.gamma = gamma
        self.engine = make_network_engine(engine)
        self.immune = frozenset(immune)
        unknown = [n for n in self.immune if n not in g]
        if unknown:
            raise ConfigurationError(
                f"immune nodes not in graph: {sorted(map(repr, unknown))[:5]}"
            )

    def run(self, initial_infected: Iterable[object], steps: int,
            seed: SeedLike = None) -> EpidemicResult:
        """Simulate ``steps`` rounds from the given seed set."""
        rng = make_rng(seed)
        infected = _initial_set(self.graph, initial_infected, self.immune)
        counts, final, ever = self.engine.sis(
            self.graph, self.beta, self.gamma, self.immune,
            infected, steps, rng,
        )
        return EpidemicResult(
            infected_counts=np.asarray(counts),
            final_infected=frozenset(final),
            total_ever_infected=ever,
            steps=len(counts) - 1,
        )


class SIRModel:
    """Discrete-time susceptible-infected-recovered dynamics.

    Like SIS but recovered nodes become permanently immune, so every run
    terminates; ``run`` iterates to extinction (or ``max_steps``).
    """

    def __init__(self, g: Graph, beta: float, gamma: float,
                 immune: Iterable[object] = (),
                 engine: "str | NetworkEngine | None" = None):
        _validate_rates(beta, gamma)
        if gamma == 0:
            raise ConfigurationError("SIR needs gamma > 0 to terminate")
        self.graph = g
        self.beta = beta
        self.gamma = gamma
        self.engine = make_network_engine(engine)
        self.immune = frozenset(immune)
        unknown = [n for n in self.immune if n not in g]
        if unknown:
            raise ConfigurationError(
                f"immune nodes not in graph: {sorted(map(repr, unknown))[:5]}"
            )

    def run(self, initial_infected: Iterable[object], max_steps: int = 10_000,
            seed: SeedLike = None) -> EpidemicResult:
        """Simulate until extinction (guaranteed) or ``max_steps``."""
        rng = make_rng(seed)
        infected = _initial_set(self.graph, initial_infected, self.immune)
        counts, final, ever = self.engine.sir(
            self.graph, self.beta, self.gamma, self.immune,
            infected, max_steps, rng,
        )
        return EpidemicResult(
            infected_counts=np.asarray(counts),
            final_infected=frozenset(final),
            total_ever_infected=ever,
            steps=len(counts) - 1,
        )


def _validate_rates(beta: float, gamma: float) -> None:
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
    if not 0.0 <= gamma <= 1.0:
        raise ConfigurationError(f"gamma must be in [0, 1], got {gamma}")


def _initial_set(g: Graph, initial: Iterable[object],
                 immune: frozenset) -> Set[object]:
    infected = set(initial)
    unknown = [n for n in infected if n not in g]
    if unknown:
        raise ConfigurationError(
            f"initial infected not in graph: {sorted(map(repr, unknown))[:5]}"
        )
    return infected - immune
