"""Node-removal strategies: random failure vs. targeted hub attack.

Paper §5.1: scale-free systems "are extremely robust against random
failures of system components.  However, when we consider a containment
of a spreading virus that is deliberately designed to attack the hubs of
the network, such connectivity becomes a vulnerability."  An attack is an
*ordering* over nodes; percolation curves are computed by removing nodes
in that order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .arraygraph import ArrayGraph
from .graph import Graph
from .mmapgraph import MmapGraph

__all__ = [
    "AttackStrategy",
    "RandomFailure",
    "TargetedDegreeAttack",
    "AdaptiveDegreeAttack",
]


class AttackStrategy(ABC):
    """Produces the removal order for a graph."""

    @abstractmethod
    def removal_order(self, g: Graph, seed: SeedLike = None) -> list[object]:
        """Every node of ``g`` exactly once, first-removed first."""

    @property
    def label(self) -> str:
        """Display name for experiment tables."""
        return type(self).__name__


class RandomFailure(AttackStrategy):
    """Uniformly random component failures (the benign regime)."""

    def removal_order(self, g: Graph, seed: SeedLike = None) -> list[object]:
        rng = make_rng(seed)
        order = list(g.nodes())
        rng.shuffle(order)
        return order


class TargetedDegreeAttack(AttackStrategy):
    """Remove nodes from highest initial degree down (the hub-seeking attack).

    Degrees are ranked once on the intact graph; ties break on node repr
    for determinism.
    """

    def removal_order(self, g: Graph, seed: SeedLike = None) -> list[object]:
        if isinstance(g, (ArrayGraph, MmapGraph)):
            return g.degree_removal_order()
        degrees = g.degrees()
        return sorted(degrees, key=lambda node: (-degrees[node], repr(node)))


class AdaptiveDegreeAttack(AttackStrategy):
    """Recompute degrees after every removal (the smartest attacker).

    Strictly stronger than the static ranking on graphs whose hub
    structure shifts as nodes disappear.
    """

    def removal_order(self, g: Graph, seed: SeedLike = None) -> list[object]:
        if isinstance(g, (ArrayGraph, MmapGraph)):
            return g.adaptive_degree_removal_order()
        work = g.copy()
        order: list[object] = []
        while work.n_nodes:
            degrees = work.degrees()
            target = max(degrees, key=lambda node: (degrees[node], repr(node)))
            order.append(target)
            work.remove_node(target)
        return order


def make_attack(name: str) -> AttackStrategy:
    """Factory: ``random``, ``targeted`` or ``adaptive``."""
    table = {
        "random": RandomFailure,
        "targeted": TargetedDegreeAttack,
        "adaptive": AdaptiveDegreeAttack,
    }
    if name not in table:
        raise ConfigurationError(
            f"unknown attack {name!r}; expected one of {sorted(table)}"
        )
    return table[name]()
