"""CSR array graph and vectorized network-resilience kernels.

The §5.1 experiments (attack percolation, cascades, epidemics, healing)
were first written over the dict-of-sets :class:`~repro.networks.graph.
Graph`, whose ``percolation_curve`` recomputes the giant component from
scratch after every removal — O(n·(n+m)) per curve.  This module is the
network analogue of :mod:`repro.agents.arrayengine`: the same models on
a compressed-sparse-row adjacency (int32 ``indices``; ``indptr`` int32
until ``2·m`` outgrows it, then int64 — see
:data:`INT32_INDPTR_CAPACITY`) with whole-frontier array kernels:

* **union-find** (path halving + union by size) connected components
  over the CSR edge arrays, with a fully vectorized min-label
  pointer-jumping variant for one-shot component labelling;
* **reverse Newman–Ziff percolation**: the giant-component curve is
  built by *adding* nodes in reverse attack order, one near-O(1) union
  per incident edge — O((n+m)·α) for the whole curve instead of one BFS
  sweep per checkpoint;
* **array-frontier BFS** propagation for cascades and epidemics
  (boolean state masks + ragged CSR row gathers via ``np.repeat`` /
  ``np.add.at``), with geometric-gap Bernoulli sampling
  (:func:`bernoulli_indices`) replacing per-edge Python RNG calls;
* **vectorized attack orderings**: degree ranking via ``np.lexsort``
  (exact ``(-degree, repr)`` tie-breaking, matching the object path
  bit-for-bit) and an incremental adaptive-degree order.

Engine selection lives in :mod:`repro.networks.engine`
(``make_network_engine`` / ``REPRO_NETWORK_ENGINE``); the equivalence
contract against the object engine is pinned by
``tests/networks/test_arraygraph.py``.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Iterable, Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError
from .graph import Graph

__all__ = [
    "ArrayGraph",
    "INT32_INDPTR_CAPACITY",
    "as_arraygraph",
    "bernoulli_indices",
    "connected_component_labels",
    "directed_edge_blocks",
    "gather_rows",
    "newman_ziff_giant_sizes",
    "union_find_labels",
]

#: largest directed-edge count (``2·m``, the final ``indptr`` entry)
#: representable in an int32 CSR offset array; graphs beyond it get
#: int64 ``indptr`` automatically (first step of the multi-million-node
#: ceiling item — node ids stay int32 until n itself approaches 2^31)
INT32_INDPTR_CAPACITY = int(np.iinfo(np.int32).max)


class ArrayGraph:
    """An immutable undirected graph in CSR form over nodes ``0..n-1``.

    ``indices[indptr[i]:indptr[i+1]]`` are the neighbors of node ``i``
    (both int32).  Arbitrary hashable node labels are kept in a side
    table so the array engine speaks the same node vocabulary as
    :class:`~repro.networks.graph.Graph`; kernels work purely on the
    integer indices.
    """

    __slots__ = ("indptr", "indices", "labels", "_index", "_edge_uv",
                 "__weakref__")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Sequence[object] | None = None,
    ):
        # offsets run to 2·m: auto-promote past the int32 capacity so
        # wide graphs don't silently wrap (indices hold node ids, which
        # stay int32 far longer)
        offset_dtype = (
            np.int64 if len(indices) > INT32_INDPTR_CAPACITY else np.int32
        )
        self.indptr = np.ascontiguousarray(indptr, dtype=offset_dtype)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        n = len(self.indptr) - 1
        if n < 0 or self.indptr[0] != 0 or (
            len(self.indices) and self.indptr[-1] != len(self.indices)
        ):
            raise ConfigurationError("malformed CSR arrays")
        self.labels: list = (
            list(range(n)) if labels is None else list(labels)
        )
        if len(self.labels) != n:
            raise ConfigurationError(
                f"{len(self.labels)} labels for {n} CSR rows"
            )
        self._index: Dict[object, int] = {
            lab: i for i, lab in enumerate(self.labels)
        }
        if len(self._index) != n:
            raise ConfigurationError("node labels must be unique")
        self._edge_uv: tuple[np.ndarray, np.ndarray] | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_graph(cls, g: "Graph | ArrayGraph") -> "ArrayGraph":
        """CSR snapshot of a :class:`Graph` (node order = insertion order)."""
        if isinstance(g, ArrayGraph):
            return g
        adj = g._adj  # sibling access: one pass, no per-node frozensets
        labels = list(adj)
        index = {lab: i for i, lab in enumerate(labels)}
        n = len(labels)
        degs = np.fromiter(
            (len(adj[lab]) for lab in labels), dtype=np.int64, count=n
        )
        # accumulate in int64; __init__ narrows to int32 when it fits
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        dst: list[int] = []
        extend = dst.extend
        for lab in labels:
            extend(map(index.__getitem__, adj[lab]))
        indices = np.asarray(dst, dtype=np.int32)
        return cls(indptr, indices, labels)

    @classmethod
    def from_edges(
        cls,
        nodes: Iterable[object] | int,
        edges: Iterable[tuple],
    ) -> "ArrayGraph":
        """Build from a node list (or count) and an undirected edge list.

        Parallel edges are deduplicated and self-loops rejected, matching
        :class:`Graph` semantics.
        """
        labels = (
            list(range(nodes)) if isinstance(nodes, int) else list(nodes)
        )
        index = {lab: i for i, lab in enumerate(labels)}
        if len(index) != len(labels):
            raise ConfigurationError("node labels must be unique")
        n = len(labels)
        us, vs = [], []
        for a, b in edges:
            try:
                u, v = index[a], index[b]
            except KeyError as exc:
                raise ConfigurationError(
                    f"edge endpoint {exc.args[0]!r} not in node list"
                ) from None
            if u == v:
                raise ConfigurationError(
                    f"self-loop on node {a!r} is not allowed"
                )
            us.append(u)
            vs.append(v)
        u = np.asarray(us, dtype=np.int64)
        v = np.asarray(vs, dtype=np.int64)
        # canonicalize + dedupe undirected pairs
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        if len(lo):
            keys = np.unique(lo * n + hi)
            lo, hi = keys // n, keys % n
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.argsort(src, kind="stable")
        deg = np.bincount(src, minlength=n)
        # accumulate in int64; __init__ narrows to int32 when it fits
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        return cls(indptr, dst[order], labels)

    def to_graph(self) -> Graph:
        """Materialize back into a dict-of-sets :class:`Graph`."""
        g = Graph(nodes=self.labels)
        labels = self.labels
        indptr, indices = self.indptr, self.indices
        g.add_edges_from(
            (labels[i], labels[int(j)])
            for i in range(self.n_nodes)
            for j in indices[indptr[i]:indptr[i + 1]]
            if i < j
        )
        return g

    # -- queries -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def __len__(self) -> int:
        return self.n_nodes

    def __contains__(self, node: object) -> bool:
        return node in self._index

    def nodes(self) -> Iterator[object]:
        """Iterate node labels in index order."""
        return iter(self.labels)

    def edges(self) -> Iterator[tuple]:
        """Iterate each undirected edge once (by ascending index pair)."""
        u, v = self.edge_arrays()
        labels = self.labels
        for a, b in zip(u.tolist(), v.tolist()):
            yield (labels[a], labels[b])

    def index_of(self, node: object) -> int:
        """CSR row index of a node label."""
        try:
            return self._index[node]
        except KeyError:
            raise ConfigurationError(f"node {node!r} not in graph") from None

    def indices_of(self, nodes: Iterable[object]) -> np.ndarray:
        """Vector of CSR row indices for an iterable of labels."""
        index = self._index
        try:
            return np.fromiter(
                (index[nd] for nd in nodes), dtype=np.int64
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"node {exc.args[0]!r} not in graph"
            ) from None

    def degree_array(self) -> np.ndarray:
        """Degrees as an int64 vector aligned with node indices."""
        return np.diff(self.indptr).astype(np.int64)

    def degree(self, node: object) -> int:
        """Number of incident edges."""
        i = self.index_of(node)
        return int(self.indptr[i + 1] - self.indptr[i])

    def degrees(self) -> Dict[object, int]:
        """Degree of every node (label-keyed, for Graph API parity)."""
        return dict(zip(self.labels, self.degree_array().tolist()))

    def neighbors(self, node: object) -> FrozenSet[object]:
        """Adjacent node labels."""
        i = self.index_of(node)
        labels = self.labels
        return frozenset(
            labels[j] for j in
            self.indices[self.indptr[i]:self.indptr[i + 1]].tolist()
        )

    def has_edge(self, u: object, v: object) -> bool:
        """Whether the undirected edge {u, v} exists."""
        if u not in self._index or v not in self._index:
            return False
        return self._index[v] in set(
            self.indices[
                self.indptr[self._index[u]]:self.indptr[self._index[u] + 1]
            ].tolist()
        )

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Each undirected edge once as (u, v) index arrays with u < v."""
        if self._edge_uv is None:
            rows = np.repeat(
                np.arange(self.n_nodes, dtype=np.int64),
                np.diff(self.indptr),
            )
            cols = self.indices.astype(np.int64)
            mask = rows < cols
            self._edge_uv = (rows[mask], cols[mask])
        return self._edge_uv

    # -- structure ---------------------------------------------------------

    def component_labels(self) -> np.ndarray:
        """Connected-component label per node (root index, vectorized)."""
        u, v = self.edge_arrays()
        return connected_component_labels(self.n_nodes, u, v)

    def connected_components(self) -> list[FrozenSet[object]]:
        """All connected components as frozensets of labels."""
        comp = self.component_labels()
        order = np.argsort(comp, kind="stable")
        sorted_comp = comp[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_comp[1:] != sorted_comp[:-1]]
        )
        bounds = np.r_[starts, len(sorted_comp)]
        labels = self.labels
        return [
            frozenset(labels[int(i)] for i in order[a:b])
            for a, b in zip(bounds[:-1], bounds[1:])
        ]

    def giant_component_size(self) -> int:
        """Size of the largest connected component (0 for empty)."""
        if self.n_nodes == 0:
            return 0
        comp = self.component_labels()
        return int(np.bincount(comp, minlength=self.n_nodes).max())

    # -- vectorized attack orderings --------------------------------------

    def _label_reprs(self) -> np.ndarray:
        return np.array([repr(lab) for lab in self.labels])

    def degree_removal_order(self) -> list:
        """Labels from highest degree down, ties by ascending ``repr``.

        Bit-identical to the object path's
        ``sorted(degrees, key=lambda n: (-degrees[n], repr(n)))``.
        """
        order = np.lexsort((self._label_reprs(), -self.degree_array()))
        labels = self.labels
        return [labels[int(i)] for i in order]

    def adaptive_degree_removal_order(self) -> list:
        """Recompute-degree removal order (max ``(degree, repr)`` each step).

        Incremental: removing a node decrements its live neighbors'
        degrees instead of rebuilding the graph, so the whole order costs
        O(n² bitmask scans + m updates) in vectorized primitives rather
        than n graph copies.
        """
        n = self.n_nodes
        deg = self.degree_array().copy()
        active = np.ones(n, dtype=bool)
        indptr, indices, labels = self.indptr, self.indices, self.labels
        order: list = []
        for _ in range(n):
            top = int(np.max(np.where(active, deg, -1)))
            cands = np.flatnonzero(active & (deg == top))
            if len(cands) == 1:
                pick = int(cands[0])
            else:
                pick = int(max(cands, key=lambda i: repr(labels[int(i)])))
            order.append(labels[pick])
            active[pick] = False
            nbrs = indices[indptr[pick]:indptr[pick + 1]]
            live = nbrs[active[nbrs]]
            deg[live] -= 1
        return order


# -- conversion cache ------------------------------------------------------

_CSR_CACHE: "weakref.WeakKeyDictionary[Graph, tuple[int, ArrayGraph]]" = (
    weakref.WeakKeyDictionary()
)


def as_arraygraph(g: "Graph | ArrayGraph") -> ArrayGraph:
    """CSR view of ``g``, cached per :class:`Graph` mutation version.

    Benchmarks percolate the same graph under several attacks; the cache
    makes the conversion a once-per-graph cost instead of once-per-curve.
    """
    if isinstance(g, ArrayGraph):
        return g
    version = getattr(g, "_version", None)
    if version is not None:
        entry = _CSR_CACHE.get(g)
        if entry is not None and entry[0] == version:
            return entry[1]
    ag = ArrayGraph.from_graph(g)
    if version is not None:
        _CSR_CACHE[g] = (version, ag)
    return ag


# -- kernels ---------------------------------------------------------------


def gather_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR rows: ``(flat neighbor array, per-row counts)``.

    The ragged equivalent of ``indices[indptr[r]:indptr[r+1]] for r in
    rows``, built from one ``np.repeat`` and one ``arange`` — the frontier
    expansion primitive for every BFS-style kernel below.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows].astype(np.int64)
    counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    cum = np.cumsum(counts)
    flat_idx = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (cum - counts), counts
    )
    return indices[flat_idx], counts


def directed_edge_blocks(
    indptr: np.ndarray,
    indices: np.ndarray,
    block_elems: int,
    aligned: bool = False,
):
    """Yield ``(u, v)`` int64 blocks of directed CSR entries in flat order.

    Concatenated, the blocks reproduce exactly the
    ``(np.repeat(arange(n), degrees), indices)`` pair that
    :meth:`ArrayGraph.edge_arrays` builds — but only ``block_elems``
    entries exist at a time, which is what lets the chunked kernels walk
    a memory-mapped ``indices`` without ever materializing the full
    edge list.  With ``aligned=True`` block boundaries snap back to row
    starts (a row larger than ``block_elems`` streams alone), the mode
    per-row invariant checks need.
    """
    total = len(indices)
    start = 0
    while start < total:
        stop = min(start + int(block_elems), total)
        if aligned and stop < total:
            row = int(np.searchsorted(indptr, stop, side="right")) - 1
            row_start = int(indptr[row])
            # defer the straddled row to the next block, unless it alone
            # overflows the block — then stream it whole
            stop = row_start if row_start > start else int(indptr[row + 1])
        pos = np.arange(start, stop, dtype=np.int64)
        u = np.searchsorted(indptr, pos, side="right").astype(np.int64) - 1
        v = np.asarray(indices[start:stop]).astype(np.int64)
        yield u, v
        start = stop


def union_find_labels(
    n: int, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Component root per node via union-find over an edge list.

    Path halving + union by size; the parent forest is flattened with
    vectorized pointer jumping at the end so every node reports its root
    directly.
    """
    parent = list(range(n))
    size = [1] * n
    for a, b in zip(
        np.asarray(u, dtype=np.int64).tolist(),
        np.asarray(v, dtype=np.int64).tolist(),
    ):
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        while parent[b] != b:
            parent[b] = parent[parent[b]]
            b = parent[b]
        if a != b:
            if size[a] < size[b]:
                a, b = b, a
            parent[b] = a
            size[a] += size[b]
    roots = np.asarray(parent, dtype=np.int64)
    while True:
        hop = roots[roots]
        if np.array_equal(hop, roots):
            return roots
        roots = hop


def connected_component_labels(
    n: int, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Min-label propagation components: fully vectorized, no edge loop.

    Each round every node adopts the smallest label among itself and its
    neighbors (``np.minimum.at`` over both edge directions), then labels
    are collapsed by pointer jumping; converges in O(log n) rounds, so
    total work is O((n + m) log n) array operations.
    """
    labels = np.arange(n, dtype=np.int64)
    if len(u) == 0:
        return labels
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    while True:
        nxt = labels.copy()
        np.minimum.at(nxt, u, labels[v])
        np.minimum.at(nxt, v, labels[u])
        while True:
            hop = nxt[nxt]
            if np.array_equal(hop, nxt):
                break
            nxt = hop
        if np.array_equal(nxt, labels):
            return labels
        labels = nxt


def newman_ziff_giant_sizes(
    indptr: np.ndarray,
    indices: np.ndarray,
    order: np.ndarray,
    base: np.ndarray | None = None,
) -> np.ndarray:
    """Giant-component size after each node *addition* (Newman–Ziff).

    Starting from the (optional) ``base`` node set, nodes of ``order``
    are activated one at a time; activating a node unions it with its
    already-active neighbors.  Returns ``sizes`` of length
    ``len(order) + 1`` with ``sizes[k]`` = largest component after the
    first ``k`` additions (``sizes[0]`` = the base's giant).

    Because the giant component is monotone under additions, evaluating
    a removal process in reverse turns O(checkpoints · BFS) into one
    O((n + m)·α) sweep — the tentpole speedup behind the array
    percolation and healing engines.
    """
    n = len(indptr) - 1
    parent = list(range(n))
    size = [1] * n
    active = bytearray(n)
    ip = indptr.tolist()
    idx = indices.tolist()
    best = 0

    additions = np.asarray(order, dtype=np.int64).tolist()
    prefix = (
        [] if base is None else np.asarray(base, dtype=np.int64).tolist()
    )
    n_prefix = len(prefix)
    sizes = np.empty(len(additions) + 1, dtype=np.int64)
    sizes[0] = 0  # overwritten below unless the base is empty
    # one flat hot loop (no per-activation call overhead): base nodes are
    # unioned first (their final giant lands in sizes[0]), then each
    # addition records the running giant in sizes[1:]
    for i, node in enumerate(prefix + additions):
        active[node] = 1
        a = node
        for j in range(ip[node], ip[node + 1]):
            b = idx[j]
            if not active[b]:
                continue
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            while parent[b] != b:
                parent[b] = parent[parent[b]]
                b = parent[b]
            if a != b:
                if size[a] < size[b]:
                    a, b = b, a
                parent[b] = a
                size[a] += size[b]
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        if size[a] > best:
            best = size[a]
        if i >= n_prefix - 1:
            sizes[i - n_prefix + 1] = best
    return sizes


def bernoulli_indices(rng, count: int, p: float) -> np.ndarray:
    """Indices ``i`` in ``[0, count)`` where an independent Bernoulli(p)
    trial fires, in ascending order.

    For dense ``p`` this is one vectorized uniform draw; for sparse ``p``
    it samples the gaps between successes geometrically (the Newman–Ziff
    trick applied to infection draws), touching O(count·p) random numbers
    instead of O(count).  Either way the joint distribution of the
    returned index set is exactly Bernoulli(p) per slot.
    """
    if count <= 0 or p <= 0.0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(count, dtype=np.int64)
    if p > 0.1:
        return np.flatnonzero(rng.random(count) < p).astype(np.int64)
    chunks: list[np.ndarray] = []
    pos = -1
    while True:
        need = max(16, int((count - pos) * p * 1.3) + 4)
        gaps = rng.geometric(p, size=need)
        hits = np.cumsum(gaps) + pos
        if len(hits) == 0 or hits[-1] >= count:
            chunks.append(hits[hits < count])
            break
        chunks.append(hits)
        pos = int(hits[-1])
    return np.concatenate(chunks).astype(np.int64)
