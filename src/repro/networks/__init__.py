"""Network substrates: from-scratch graphs, scale-free generators,
attack/failure percolation, load cascades, and epidemics (paper §4.5,
§5.1).
"""

from .arraygraph import ArrayGraph, as_arraygraph
from .attacks import (
    AdaptiveDegreeAttack,
    AttackStrategy,
    RandomFailure,
    TargetedDegreeAttack,
    make_attack,
)
from .centrality import BetweennessAttack, betweenness_centrality
from .cascades import (
    CascadeResult,
    LoadCascadeModel,
    ProbabilisticCascadeModel,
    modular_graph,
)
from .engine import (
    ArrayNetworkEngine,
    MmapNetworkEngine,
    NetworkEngine,
    ObjectNetworkEngine,
    make_network_engine,
)
from .epidemics import EpidemicResult, SIRModel, SISModel, immunize
from .generators import (
    barabasi_albert,
    barabasi_albert_stream,
    configuration_star,
    degree_histogram,
    erdos_renyi,
    erdos_renyi_stream,
    watts_strogatz,
)
from .graph import Graph
from .healing import NetworkRecoveryResult, NetworkRecoverySimulator
from .mmapgraph import (
    MmapGraph,
    as_mmapgraph,
    derive_chunk_elems,
    estimate_graph_bytes,
)
from .metrics import (
    assortativity,
    average_clustering,
    average_path_length,
    clustering_coefficient,
    degree_tail_exponent,
)
from .percolation import PercolationCurve, critical_fraction, percolation_curve

__all__ = [
    "ArrayGraph",
    "as_arraygraph",
    "AdaptiveDegreeAttack",
    "AttackStrategy",
    "RandomFailure",
    "TargetedDegreeAttack",
    "make_attack",
    "ArrayNetworkEngine",
    "MmapNetworkEngine",
    "NetworkEngine",
    "ObjectNetworkEngine",
    "make_network_engine",
    "MmapGraph",
    "as_mmapgraph",
    "derive_chunk_elems",
    "estimate_graph_bytes",
    "BetweennessAttack",
    "betweenness_centrality",
    "CascadeResult",
    "LoadCascadeModel",
    "ProbabilisticCascadeModel",
    "modular_graph",
    "EpidemicResult",
    "SIRModel",
    "SISModel",
    "immunize",
    "barabasi_albert",
    "barabasi_albert_stream",
    "configuration_star",
    "degree_histogram",
    "erdos_renyi",
    "erdos_renyi_stream",
    "watts_strogatz",
    "Graph",
    "NetworkRecoveryResult",
    "NetworkRecoverySimulator",
    "assortativity",
    "average_clustering",
    "average_path_length",
    "clustering_coefficient",
    "degree_tail_exponent",
    "PercolationCurve",
    "critical_fraction",
    "percolation_curve",
]
