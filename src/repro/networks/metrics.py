"""Structural network metrics.

Used to characterize the generated ensembles: clustering coefficient and
average path length (the small-world signature of Watts–Strogatz),
degree assortativity, and a log-log degree-tail exponent for checking
the scale-free property of preferential attachment.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import AnalysisError, ConfigurationError
from ..rng import SeedLike, make_rng
from .graph import Graph

__all__ = [
    "clustering_coefficient",
    "average_clustering",
    "average_path_length",
    "degree_tail_exponent",
    "assortativity",
]


def clustering_coefficient(g: Graph, node: object) -> float:
    """Fraction of a node's neighbour pairs that are themselves linked."""
    neighbors = list(g.neighbors(node))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    for i, u in enumerate(neighbors):
        for v in neighbors[i + 1:]:
            if g.has_edge(u, v):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(g: Graph) -> float:
    """Mean local clustering over all nodes."""
    if g.n_nodes == 0:
        raise ConfigurationError("empty graph has no clustering")
    return float(np.mean([clustering_coefficient(g, n) for n in g.nodes()]))


def average_path_length(g: Graph, sample: int | None = None,
                        seed: SeedLike = None) -> float:
    """Mean shortest-path length over connected pairs.

    ``sample`` caps the number of BFS sources (for large graphs);
    ``None`` uses every node.  Raises when no pair is connected.
    """
    nodes = list(g.nodes())
    if len(nodes) < 2:
        raise ConfigurationError("need at least two nodes")
    if sample is not None:
        if sample < 1:
            raise ConfigurationError(f"sample must be >= 1, got {sample}")
        rng = make_rng(seed)
        idx = rng.choice(len(nodes), size=min(sample, len(nodes)),
                         replace=False)
        sources = [nodes[int(i)] for i in idx]
    else:
        sources = nodes
    total, pairs = 0, 0
    for source in sources:
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in g.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        for node, d in dist.items():
            if node != source:
                total += d
                pairs += 1
    if pairs == 0:
        raise AnalysisError("graph has no connected pairs")
    return total / pairs


def degree_tail_exponent(g: Graph, k_min: int = 2) -> float:
    """MLE power-law exponent of the degree distribution above ``k_min``.

    For BA graphs the theoretical value is 3; the discrete MLE
    alpha = 1 + n / Σ ln(k_i / (k_min − 1/2)) is the standard estimator.
    """
    if k_min < 1:
        raise ConfigurationError(f"k_min must be >= 1, got {k_min}")
    degrees = np.asarray(
        [d for d in g.degrees().values() if d >= k_min], dtype=float
    )
    if len(degrees) < 10:
        raise AnalysisError(
            f"fewer than 10 nodes with degree >= {k_min}; cannot estimate"
        )
    logs = np.log(degrees / (k_min - 0.5))
    return float(1.0 + len(degrees) / logs.sum())


def assortativity(g: Graph) -> float:
    """Pearson correlation of degrees across edges (Newman's r).

    Negative for BA-style graphs (hubs link to leaves), ~0 for ER.
    """
    deg = g.degrees()
    # each undirected edge contributes both orientations
    x = np.asarray(
        [deg[end] for edge in g.edges() for end in edge], dtype=float
    )
    if len(x) < 2:
        raise AnalysisError("need at least one edge")
    y = x.reshape(-1, 2)[:, ::-1].reshape(-1)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
