"""Betweenness centrality (Brandes' algorithm) and the smarter attack.

Degree is a cheap hub proxy; betweenness — the share of shortest paths
through a node — measures actual traffic mediation, which is what both
the §5.1 virus and the §4.5 load cascades exploit.  Brandes' algorithm
computes exact betweenness in O(nm) with a BFS + dependency
accumulation per source; :class:`BetweennessAttack` removes the highest
mediators first, typically shattering networks even faster than degree
targeting.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike
from .arraygraph import ArrayGraph, gather_rows
from .attacks import AttackStrategy
from .graph import Graph

__all__ = ["betweenness_centrality", "BetweennessAttack"]


def _betweenness_array(ag: ArrayGraph, normalized: bool) -> np.ndarray:
    """Brandes over CSR: level-synchronous BFS + per-level accumulation.

    Same algorithm as the object path; float sums run in array order
    instead of dict order, so scores match to rounding, not bit-for-bit.
    """
    n = ag.n_nodes
    indptr, indices = ag.indptr, ag.indices
    bc = np.zeros(n)
    for source in range(n):
        dist = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n)
        dist[source] = 0
        sigma[source] = 1.0
        levels = [np.asarray([source], dtype=np.int64)]
        frontier = levels[0]
        d = 0
        while frontier.size:
            flat, counts = gather_rows(indptr, indices, frontier)
            flat = flat.astype(np.int64)
            new = np.unique(flat[dist[flat] == -1])
            dist[new] = d + 1
            at_next = dist[flat] == d + 1
            np.add.at(
                sigma, flat[at_next],
                np.repeat(sigma[frontier], counts)[at_next],
            )
            levels.append(new)
            frontier = new
            d += 1
        # dependency accumulation, farthest level first
        delta = np.zeros(n)
        for d in range(len(levels) - 1, 0, -1):
            lev = levels[d]
            if lev.size == 0:
                continue
            flat, counts = gather_rows(indptr, indices, lev)
            flat = flat.astype(np.int64)
            coef = (1.0 + delta[lev]) / sigma[lev]
            preds = dist[flat] == d - 1
            contrib = sigma[flat] * np.repeat(coef, counts)
            np.add.at(delta, flat[preds], contrib[preds])
            bc[lev] += delta[lev]
    bc /= 2.0
    if normalized and n > 2:
        bc *= 2.0 / ((n - 1) * (n - 2))
    return bc


def betweenness_centrality(g: "Graph | ArrayGraph", normalized: bool = True
                           ) -> Dict[object, float]:
    """Exact shortest-path betweenness of every node (Brandes 2001).

    ``normalized`` divides by (n−1)(n−2)/2, the count of possible
    mediated pairs in an undirected graph.  An :class:`ArrayGraph`
    argument runs the vectorized CSR variant.
    """
    if isinstance(g, ArrayGraph):
        scores = _betweenness_array(g, normalized)
        return {label: float(s) for label, s in zip(g.labels, scores)}
    nodes = list(g.nodes())
    betweenness: Dict[object, float] = {v: 0.0 for v in nodes}
    for source in nodes:
        # single-source shortest paths (unweighted: BFS)
        stack: list = []
        predecessors: Dict[object, list] = {v: [] for v in nodes}
        sigma: Dict[object, float] = {v: 0.0 for v in nodes}
        sigma[source] = 1.0
        distance: Dict[object, int] = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in g.neighbors(v):
                if w not in distance:
                    distance[w] = distance[v] + 1
                    queue.append(w)
                if distance[w] == distance[v] + 1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        # dependency accumulation, farthest first
        delta: Dict[object, float] = {v: 0.0 for v in nodes}
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != source:
                betweenness[w] += delta[w]
        # undirected: every pair is visited from both endpoints
    for v in betweenness:
        betweenness[v] /= 2.0
    if normalized:
        n = len(nodes)
        if n > 2:
            scale = 2.0 / ((n - 1) * (n - 2))
            for v in betweenness:
                betweenness[v] *= scale
    return betweenness


class BetweennessAttack(AttackStrategy):
    """Remove nodes by descending betweenness on the intact graph.

    A static ranking (like :class:`TargetedDegreeAttack`); recomputing
    after every removal is exact but O(n²m) — prohibitive beyond small
    graphs, so the static variant is the practical attacker model.
    """

    def removal_order(self, g: Graph, seed: SeedLike = None) -> list[object]:
        scores = betweenness_centrality(g)
        return sorted(scores, key=lambda node: (-scores[node], repr(node)))
