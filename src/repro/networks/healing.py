"""Network attack-and-healing: connectivity as a quality signal.

Ties the §5.1 network substrate into the paper's core metric: an attack
removes nodes at the shock time; repair crews restore a bounded number
of nodes (with their original edges) per step; the giant-component
fraction ×100 is the Q(t) the Bruneau machinery assesses.  The network
becomes one more ResilientSystem whose redundancy (spare paths),
repair rate (adaptability) and topology can be traded off in the same
currency as everything else in the library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.quality import QualityTrace
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .attacks import AttackStrategy
from .engine import NetworkEngine, make_network_engine
from .graph import Graph

__all__ = ["NetworkRecoveryResult", "NetworkRecoverySimulator"]


@dataclass(frozen=True)
class NetworkRecoveryResult:
    """One attack-and-heal episode."""

    trace: QualityTrace
    removed: tuple
    restored_per_step: int
    fully_recovered: bool


class NetworkRecoverySimulator:
    """Attack a graph at t=shock_time, then heal nodes per step.

    Healing restores removed nodes in reverse severity order (the most
    connective first — repair crews triage), re-attaching each node's
    original edges whose other endpoint is currently present.
    """

    def __init__(self, graph: Graph, attack: AttackStrategy,
                 repairs_per_step: int = 1,
                 engine: "str | NetworkEngine | None" = None):
        if graph.n_nodes < 2:
            raise ConfigurationError("need at least 2 nodes")
        if repairs_per_step < 0:
            raise ConfigurationError(
                f"repairs_per_step must be >= 0, got {repairs_per_step}"
            )
        self.graph = graph
        self.attack = attack
        self.repairs_per_step = repairs_per_step
        self.engine = make_network_engine(engine)

    def run(
        self,
        attack_fraction: float,
        horizon: int,
        shock_time: int = 1,
        seed: SeedLike = None,
    ) -> NetworkRecoveryResult:
        """Remove ``attack_fraction`` of nodes at ``shock_time``; heal."""
        if not 0.0 <= attack_fraction <= 1.0:
            raise ConfigurationError(
                f"attack_fraction must be in [0, 1], got {attack_fraction}"
            )
        if horizon < 2:
            raise ConfigurationError(f"horizon must be >= 2, got {horizon}")
        if not 0 <= shock_time < horizon:
            raise ConfigurationError(
                f"shock_time must be in [0, {horizon}), got {shock_time}"
            )
        rng = make_rng(seed)
        n = self.graph.n_nodes
        order = self.attack.removal_order(
            self.engine.ordering_graph(self.graph), rng
        )
        n_remove = int(round(attack_fraction * n))
        to_remove = order[:n_remove]
        times, quality, fully_recovered = self.engine.healing_episode(
            self.graph, to_remove, self.repairs_per_step,
            horizon, shock_time,
        )
        return NetworkRecoveryResult(
            trace=QualityTrace.from_samples(times, quality),
            removed=tuple(to_remove),
            restored_per_step=self.repairs_per_step,
            fully_recovered=fully_recovered,
        )
