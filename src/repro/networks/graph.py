"""A from-scratch undirected graph type.

The scale-free robustness experiments (§5.1) need only adjacency,
degrees, connected components and node removal; implementing them
directly keeps the substrate dependency-free (networkx is used only in
tests, as an independent oracle).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, Set

from ..errors import ConfigurationError

__all__ = ["Graph", "NEIGHBOR_CACHE_MAX_NODES"]

#: node count above which :meth:`Graph.neighbors` stops caching its
#: frozenset views.  The cache is worth it on small graphs hammered by
#: the object-engine hot loops, but one retained frozenset per touched
#: node effectively *doubles* adjacency memory on large graphs — above
#: this threshold views are rebuilt per call instead of kept forever
NEIGHBOR_CACHE_MAX_NODES = 100_000


class Graph:
    """A simple undirected graph over integer-friendly hashable nodes."""

    def __init__(self, nodes: Iterable[object] = (), edges: Iterable[tuple] = ()):
        self._adj: Dict[object, Set[object]] = {}
        # per-node frozenset views handed out by neighbors(); invalidated
        # on mutation so hot loops don't rebuild a frozenset per call
        self._frozen: Dict[object, FrozenSet[object]] = {}
        # bumped on every mutation; lets derived structures (the CSR
        # ArrayGraph cache) detect staleness without hashing the graph
        self._version = 0
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # -- mutation ---------------------------------------------------------

    def add_node(self, node: object) -> None:
        """Insert an isolated node (no-op if present)."""
        if node not in self._adj:
            self._adj[node] = set()
            self._version += 1

    def add_edge(self, u: object, v: object) -> None:
        """Insert an undirected edge, creating endpoints as needed.

        Self-loops are rejected: none of the resilience models use them
        and they silently distort degree-based attack orderings.
        """
        if u == v:
            raise ConfigurationError(f"self-loop on node {u!r} is not allowed")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self._frozen.pop(u, None)
        self._frozen.pop(v, None)
        self._version += 1

    def add_edges_from(self, edges: Iterable[tuple]) -> None:
        """Bulk :meth:`add_edge`: one cache invalidation for the batch.

        The generators funnel their (often vectorized) edge draws through
        this so graph construction isn't dominated by per-edge method and
        cache-bookkeeping overhead.
        """
        adj = self._adj
        touched = set()
        for u, v in edges:
            if u == v:
                raise ConfigurationError(
                    f"self-loop on node {u!r} is not allowed"
                )
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
            touched.add(u)
            touched.add(v)
        if touched:
            for node in touched:
                self._frozen.pop(node, None)
            self._version += 1

    def remove_node(self, node: object) -> None:
        """Delete a node and its incident edges."""
        if node not in self._adj:
            raise ConfigurationError(f"node {node!r} not in graph")
        frozen = self._frozen
        for neighbor in self._adj.pop(node):
            self._adj[neighbor].discard(node)
            frozen.pop(neighbor, None)
        frozen.pop(node, None)
        self._version += 1

    def remove_edge(self, u: object, v: object) -> None:
        """Delete the edge {u, v}."""
        if u not in self._adj or v not in self._adj[u]:
            raise ConfigurationError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._frozen.pop(u, None)
        self._frozen.pop(v, None)
        self._version += 1

    def copy(self) -> "Graph":
        """Deep copy of the adjacency structure."""
        g = Graph()
        g._adj = {node: set(neigh) for node, neigh in self._adj.items()}
        return g

    # -- queries -----------------------------------------------------------

    def __contains__(self, node: object) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neigh) for neigh in self._adj.values()) // 2

    def nodes(self) -> Iterator[object]:
        """Iterate nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple]:
        """Iterate each undirected edge once."""
        seen: Set[frozenset] = set()
        for u, neigh in self._adj.items():
            for v in neigh:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def neighbors(self, node: object) -> FrozenSet[object]:
        """Adjacent nodes (a cached read-only view, rebuilt on mutation).

        Caching is bypassed past :data:`NEIGHBOR_CACHE_MAX_NODES` nodes
        — an unbounded one-frozenset-per-node cache would double the
        memory of exactly the graphs that can least afford it.
        """
        cached = self._frozen.get(node)
        if cached is not None:
            return cached
        if node not in self._adj:
            raise ConfigurationError(f"node {node!r} not in graph")
        cached = frozenset(self._adj[node])
        if len(self._adj) <= NEIGHBOR_CACHE_MAX_NODES:
            self._frozen[node] = cached
        return cached

    def degree(self, node: object) -> int:
        """Number of incident edges."""
        return len(self.neighbors(node))

    def degrees(self) -> Dict[object, int]:
        """Degree of every node."""
        return {node: len(neigh) for node, neigh in self._adj.items()}

    def has_edge(self, u: object, v: object) -> bool:
        """Whether the undirected edge {u, v} exists."""
        return u in self._adj and v in self._adj[u]

    # -- structure ---------------------------------------------------------------

    def connected_components(self) -> list[FrozenSet[object]]:
        """All connected components (BFS), largest not guaranteed first."""
        seen: Set[object] = set()
        components: list[FrozenSet[object]] = []
        for start in self._adj:
            if start in seen:
                continue
            queue = deque([start])
            component: Set[object] = set()
            while queue:
                node = queue.popleft()
                if node in component:
                    continue
                component.add(node)
                for neighbor in self._adj[node]:
                    if neighbor not in component:
                        queue.append(neighbor)
            seen |= component
            components.append(frozenset(component))
        return components

    def giant_component_size(self) -> int:
        """Size of the largest connected component (0 for the empty graph)."""
        components = self.connected_components()
        if not components:
            return 0
        return max(len(c) for c in components)

    def subgraph(self, keep: Iterable[object]) -> "Graph":
        """Induced subgraph on ``keep``."""
        keep_set = set(keep)
        unknown = keep_set - set(self._adj)
        if unknown:
            raise ConfigurationError(
                f"subgraph requested on unknown nodes: {sorted(map(repr, unknown))[:5]}"
            )
        g = Graph()
        for node in keep_set:
            g.add_node(node)
        for u, v in self.edges():
            if u in keep_set and v in keep_set:
                g.add_edge(u, v)
        return g

    def shortest_path_length(self, source: object, target: object) -> int | None:
        """BFS hop count from source to target; None when disconnected."""
        if source not in self._adj or target not in self._adj:
            raise ConfigurationError("both endpoints must be in the graph")
        if source == target:
            return 0
        dist = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in self._adj[node]:
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    if neighbor == target:
                        return dist[neighbor]
                    queue.append(neighbor)
        return None
