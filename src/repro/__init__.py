"""repro — a Systems Resilience library.

A production-quality reproduction of Maruyama & Minami, "Towards Systems
Resilience" (2013): the dynamic-constraint-satisfaction resilience model
(k-recoverability, K-maintainability, the Bruneau loss metric), the three
passive resilience strategies (redundancy, diversity, adaptability) and
active resilience (anticipation, mode switching), plus the evolutionary
multi-agent testbed and the discussion-section substrates (scale-free
robustness, self-organized criticality, heavy-tailed X-events).

Quickstart::

    from repro.spacecraft import Spacecraft

    craft = Spacecraft(n_components=6)
    print(craft.minimal_k(max_debris_hits=2))   # -> 2

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-claim experiment index.
"""

from __future__ import annotations

__version__ = "1.0.0"

from . import (
    agents,
    analysis,
    anticipation,
    core,
    csp,
    dynamics,
    faults,
    management,
    modes,
    networks,
    planning,
    redundancy,
    runtime,
    shocks,
    soc,
    spacecraft,
)
from .rng import make_rng

__all__ = [
    "agents",
    "analysis",
    "anticipation",
    "core",
    "csp",
    "dynamics",
    "faults",
    "management",
    "modes",
    "networks",
    "planning",
    "redundancy",
    "runtime",
    "shocks",
    "soc",
    "spacecraft",
    "make_rng",
    "__version__",
]
