"""Scenario planning (paper §3.4.1).

"There are three different approaches to anticipation; prediction,
scenario planning, and simulation."  Prediction lives in
:mod:`repro.anticipation.forecast`; this module is the scenario-planning
leg: enumerate scenarios with (rough) probabilities, score candidate
actions under each, and choose by expected value, worst case (maximin),
or minimax regret — the robust-decision family used when X-event
probabilities are untrustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import AnalysisError, ConfigurationError

__all__ = ["Scenario", "ActionProfile", "ScenarioAnalysis"]


@dataclass(frozen=True)
class Scenario:
    """One future state of the world with a (possibly rough) probability."""

    name: str
    probability: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class ActionProfile:
    """A candidate action and its payoff in each scenario."""

    name: str
    payoffs: Mapping[str, float]  # scenario name -> payoff (higher better)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("action needs a non-empty name")
        if not self.payoffs:
            raise ConfigurationError(
                f"action {self.name!r} must have at least one payoff"
            )


class ScenarioAnalysis:
    """Score actions across scenarios under three decision rules."""

    def __init__(self, scenarios: Sequence[Scenario],
                 actions: Sequence[ActionProfile]):
        if not scenarios:
            raise ConfigurationError("need at least one scenario")
        if not actions:
            raise ConfigurationError("need at least one action")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ConfigurationError("scenario names must be unique")
        action_names = [a.name for a in actions]
        if len(set(action_names)) != len(action_names):
            raise ConfigurationError("action names must be unique")
        total_p = sum(s.probability for s in scenarios)
        if abs(total_p - 1.0) > 1e-6:
            raise ConfigurationError(
                f"scenario probabilities must sum to 1, got {total_p:.4f}"
            )
        for action in actions:
            missing = set(names) - set(action.payoffs)
            if missing:
                raise ConfigurationError(
                    f"action {action.name!r} misses payoffs for "
                    f"{sorted(missing)}"
                )
        self.scenarios = tuple(scenarios)
        self.actions = tuple(actions)

    # -- decision rules ---------------------------------------------------

    def expected_value(self, action: ActionProfile) -> float:
        """Probability-weighted payoff (trusts the probabilities)."""
        return sum(
            s.probability * action.payoffs[s.name] for s in self.scenarios
        )

    def worst_case(self, action: ActionProfile) -> float:
        """Minimum payoff over scenarios (maximin criterion)."""
        return min(action.payoffs[s.name] for s in self.scenarios)

    def regret(self, action: ActionProfile, scenario: Scenario) -> float:
        """Best-achievable payoff in the scenario minus this action's."""
        best = max(a.payoffs[scenario.name] for a in self.actions)
        return best - action.payoffs[scenario.name]

    def max_regret(self, action: ActionProfile) -> float:
        """The action's worst regret across scenarios."""
        return max(self.regret(action, s) for s in self.scenarios)

    # -- choices -----------------------------------------------------------

    def best_by_expected_value(self) -> ActionProfile:
        """EV-optimal action (the 'probabilities are reliable' world)."""
        return max(self.actions, key=lambda a: (self.expected_value(a), a.name))

    def best_by_worst_case(self) -> ActionProfile:
        """Maximin action (assume the worst scenario happens)."""
        return max(self.actions, key=lambda a: (self.worst_case(a), a.name))

    def best_by_minimax_regret(self) -> ActionProfile:
        """Minimax-regret action (hedge when probabilities are rough)."""
        return min(self.actions, key=lambda a: (self.max_regret(a), a.name))

    def table(self) -> list[dict]:
        """One summary row per action, all three criteria."""
        return [
            {
                "action": a.name,
                "expected_value": round(self.expected_value(a), 4),
                "worst_case": round(self.worst_case(a), 4),
                "max_regret": round(self.max_regret(a), 4),
            }
            for a in self.actions
        ]
