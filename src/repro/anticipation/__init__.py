"""Active resilience — anticipation: early-warning signals, tipping-point
models, staged alerts, and data-plus-expert forecasting (paper §3.4.1,
§3.4.2).
"""

from .alerts import AlertPhase, StagedAlertSystem, who_pandemic_scale
from .earlywarning import (
    EarlyWarningIndicators,
    compute_indicators,
    detrend,
    kendall_trend,
    rolling_autocorrelation,
    rolling_skewness,
    rolling_variance,
    warning_verdict,
    detection_roc,
    roc_auc,
)
from .forecast import (
    AR1Forecaster,
    CombinedForecaster,
    ExpertPrior,
    Forecaster,
    MovingAverageForecaster,
    PersistenceForecaster,
    evaluate_forecaster,
    mean_squared_error,
)
from .scenario import ActionProfile, Scenario, ScenarioAnalysis
from .tipping import SaddleNodeSystem, TippingSeries, critical_forcing

__all__ = [
    "AlertPhase",
    "StagedAlertSystem",
    "who_pandemic_scale",
    "EarlyWarningIndicators",
    "compute_indicators",
    "detrend",
    "kendall_trend",
    "rolling_autocorrelation",
    "rolling_skewness",
    "rolling_variance",
    "warning_verdict",
    "detection_roc",
    "roc_auc",
    "AR1Forecaster",
    "CombinedForecaster",
    "ExpertPrior",
    "Forecaster",
    "MovingAverageForecaster",
    "PersistenceForecaster",
    "evaluate_forecaster",
    "mean_squared_error",
    "ActionProfile",
    "Scenario",
    "ScenarioAnalysis",
    "SaddleNodeSystem",
    "TippingSeries",
    "critical_forcing",
]
