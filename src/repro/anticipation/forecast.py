"""Simple forecasters and data-plus-expert combination (paper §3.4.1).

Nate Silver's observation, as the paper relays it: "the best predictions
are usually based on combinations of a large amount of high-quality data
on the past phenomena and the wisdom of human experts in the domain."
We implement baseline statistical forecasters (persistence, moving
average, fitted AR(1)) and :class:`CombinedForecaster`, a precision-
weighted blend of a statistical forecast with an expert prior, and show
the blend dominating either source alone when both are imperfect.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, ConfigurationError

__all__ = [
    "Forecaster",
    "PersistenceForecaster",
    "MovingAverageForecaster",
    "AR1Forecaster",
    "ExpertPrior",
    "CombinedForecaster",
    "mean_squared_error",
    "evaluate_forecaster",
]


class Forecaster(ABC):
    """One-step-ahead point forecaster over a scalar series."""

    @abstractmethod
    def forecast(self, history: np.ndarray) -> float:
        """Predict the next value from the history so far."""


def _history(history: np.ndarray, min_len: int) -> np.ndarray:
    x = np.asarray(history, dtype=float)
    if x.ndim != 1 or len(x) < min_len:
        raise AnalysisError(f"history must be 1-D with >= {min_len} points")
    return x


@dataclass(frozen=True)
class PersistenceForecaster(Forecaster):
    """Tomorrow equals today — the no-skill baseline."""

    def forecast(self, history: np.ndarray) -> float:
        x = _history(history, 1)
        return float(x[-1])


@dataclass(frozen=True)
class MovingAverageForecaster(Forecaster):
    """Mean of the last ``window`` observations."""

    window: int = 5

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")

    def forecast(self, history: np.ndarray) -> float:
        x = _history(history, 1)
        return float(x[-self.window:].mean())


@dataclass(frozen=True)
class AR1Forecaster(Forecaster):
    """Fit x_{t+1} = c + φ·x_t by least squares over the history."""

    def forecast(self, history: np.ndarray) -> float:
        x = _history(history, 3)
        a, b = x[:-1], x[1:]
        va = np.var(a)
        if va == 0:
            return float(x[-1])
        phi = float(np.cov(a, b, bias=True)[0, 1] / va)
        c = float(b.mean() - phi * a.mean())
        return c + phi * float(x[-1])


@dataclass(frozen=True)
class ExpertPrior:
    """A domain expert's belief: a mean and a stated uncertainty (std)."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise ConfigurationError(f"expert std must be > 0, got {self.std}")


@dataclass(frozen=True)
class CombinedForecaster(Forecaster):
    """Precision-weighted blend of a statistical forecast and an expert.

    The statistical forecast's uncertainty is estimated from its recent
    in-sample one-step errors; the expert supplies mean ± std.  Weights
    are inverse variances (the Bayesian normal-normal posterior mean).
    """

    base: Forecaster
    expert: ExpertPrior
    error_window: int = 20

    def __post_init__(self) -> None:
        if self.error_window < 3:
            raise ConfigurationError(
                f"error_window must be >= 3, got {self.error_window}"
            )

    def forecast(self, history: np.ndarray) -> float:
        x = _history(history, 4)
        # estimate base-forecaster variance on the recent past
        start = max(1, len(x) - self.error_window)
        errors = []
        for t in range(start, len(x)):
            pred = self.base.forecast(x[:t])
            errors.append(pred - x[t])
        data_var = float(np.var(errors)) if errors else 1.0
        data_var = max(data_var, 1e-12)
        expert_var = self.expert.std**2
        w_data = (1.0 / data_var) / (1.0 / data_var + 1.0 / expert_var)
        base_pred = self.base.forecast(x)
        return w_data * base_pred + (1.0 - w_data) * self.expert.mean


def mean_squared_error(predictions: np.ndarray, truth: np.ndarray) -> float:
    """Plain MSE with shape checking."""
    p = np.asarray(predictions, dtype=float)
    t = np.asarray(truth, dtype=float)
    if p.shape != t.shape or p.ndim != 1 or len(p) == 0:
        raise AnalysisError("predictions and truth must be equal-length 1-D")
    return float(np.mean((p - t) ** 2))


def evaluate_forecaster(
    forecaster: Forecaster, series: np.ndarray, burn_in: int = 10
) -> float:
    """Walk-forward one-step MSE of ``forecaster`` on ``series``."""
    x = _history(series, burn_in + 2)
    if burn_in < 1:
        raise ConfigurationError(f"burn_in must be >= 1, got {burn_in}")
    preds = []
    for t in range(burn_in, len(x)):
        preds.append(forecaster.forecast(x[:t]))
    return mean_squared_error(np.asarray(preds), x[burn_in:])
