"""Staged alert systems (paper §3.4.1).

"WHO defines six phases of pandemic alert ... the global society at
large responded based on the phase 4-6 declarations."  A staged alert
system maps a continuous risk indicator to a small ordinal phase scale
with hysteresis (raising a phase is easier than lowering it), and
downstream controllers — e.g. the mode-switching policies in
:mod:`repro.modes` — key off phase thresholds rather than raw signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["AlertPhase", "StagedAlertSystem", "who_pandemic_scale"]


@dataclass(frozen=True)
class AlertPhase:
    """One phase: its ordinal level, name, and activation threshold."""

    level: int
    name: str
    threshold: float

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ConfigurationError(f"phase level must be >= 0, got {self.level}")


class StagedAlertSystem:
    """Hysteretic phase ladder over a scalar risk indicator.

    The indicator enters phase ``p`` when it exceeds ``p.threshold``; it
    only drops back when it falls below ``threshold × (1 − hysteresis)``.
    This mirrors real alert systems, which de-escalate reluctantly.
    """

    def __init__(self, phases: Sequence[AlertPhase], hysteresis: float = 0.1):
        if len(phases) < 2:
            raise ConfigurationError("need at least two phases")
        levels = [p.level for p in phases]
        thresholds = [p.threshold for p in phases]
        if levels != sorted(levels) or len(set(levels)) != len(levels):
            raise ConfigurationError("phase levels must be strictly increasing")
        if thresholds != sorted(thresholds) or len(set(thresholds)) != len(thresholds):
            raise ConfigurationError("phase thresholds must be strictly increasing")
        if not 0 <= hysteresis < 1:
            raise ConfigurationError(f"hysteresis must be in [0, 1), got {hysteresis}")
        self.phases = tuple(phases)
        self.hysteresis = hysteresis
        self._current = phases[0]

    @property
    def current(self) -> AlertPhase:
        """The phase currently declared."""
        return self._current

    def reset(self) -> None:
        """Return to the base phase."""
        self._current = self.phases[0]

    def observe(self, indicator: float) -> AlertPhase:
        """Update the declared phase for a new indicator reading."""
        # escalate as far as the raw threshold allows
        target = self.phases[0]
        for phase in self.phases:
            if indicator >= phase.threshold:
                target = phase
        if target.level > self._current.level:
            self._current = target
            return self._current
        # de-escalate only past the hysteresis band
        while self._current.level > self.phases[0].level:
            idx = next(
                i for i, p in enumerate(self.phases)
                if p.level == self._current.level
            )
            floor = self._current.threshold * (1.0 - self.hysteresis)
            if indicator < floor:
                self._current = self.phases[idx - 1]
            else:
                break
        return self._current

    def run(self, indicators: Sequence[float]) -> list[int]:
        """Phase level declared after each successive reading."""
        return [self.observe(float(x)).level for x in indicators]

    def escalations(self, indicators: Sequence[float]) -> list[int]:
        """Indices at which the declared level strictly rose."""
        self.reset()
        levels = self.run(indicators)
        out = []
        prev = self.phases[0].level
        for i, level in enumerate(levels):
            if level > prev:
                out.append(i)
            prev = level
        return out


def who_pandemic_scale(base_threshold: float = 1.0,
                       ratio: float = 2.0) -> StagedAlertSystem:
    """A six-phase, WHO-style ladder with geometric thresholds.

    Phase p activates at ``base_threshold × ratio^(p−1)``; phases 4–6 are
    conventionally the "respond" band.
    """
    if base_threshold <= 0:
        raise ConfigurationError(
            f"base_threshold must be > 0, got {base_threshold}"
        )
    if ratio <= 1:
        raise ConfigurationError(f"ratio must be > 1, got {ratio}")
    names = [
        "phase-1-interpandemic",
        "phase-2-animal-cases",
        "phase-3-sporadic-human",
        "phase-4-community-outbreaks",
        "phase-5-widespread",
        "phase-6-pandemic",
    ]
    phases = [
        AlertPhase(level=i + 1, name=name,
                   threshold=base_threshold * ratio**i)
        for i, name in enumerate(names)
    ]
    # phase 0: nothing declared
    phases.insert(0, AlertPhase(level=0, name="phase-0-quiet", threshold=0.0))
    return StagedAlertSystem(phases)
