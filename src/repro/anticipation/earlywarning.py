"""Early-warning signals for critical transitions (paper §3.4.1).

Implements the standard Scheffer toolkit: detrend a series, compute
rolling-window variance, lag-1 autocorrelation and skewness, and score
the *trend* of each indicator with the Kendall rank correlation — a
rising trend of variance/autocorrelation is the critical-slowing-down
signature that precedes a tipping point.  :func:`warning_verdict`
packages the thresholded decision used by the detection-performance
experiment (E16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import AnalysisError

__all__ = [
    "detrend",
    "rolling_variance",
    "rolling_autocorrelation",
    "rolling_skewness",
    "kendall_trend",
    "EarlyWarningIndicators",
    "compute_indicators",
    "warning_verdict",
    "detection_roc",
    "roc_auc",
]


def _check_series(series: np.ndarray, min_len: int) -> np.ndarray:
    x = np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise AnalysisError("series must be 1-D")
    if len(x) < min_len:
        raise AnalysisError(f"series too short: need >= {min_len}, got {len(x)}")
    if not np.all(np.isfinite(x)):
        raise AnalysisError("series contains non-finite values")
    return x


def detrend(series: np.ndarray, window: int) -> np.ndarray:
    """Subtract a centered moving average (Gaussian-free, edge-padded)."""
    x = _check_series(series, max(window, 3))
    if window < 2:
        raise AnalysisError(f"window must be >= 2, got {window}")
    kernel = np.ones(window) / window
    padded = np.concatenate([
        np.full(window // 2, x[0]), x, np.full(window - window // 2 - 1, x[-1])
    ])
    trend = np.convolve(padded, kernel, mode="valid")
    return x - trend


def _rolling_apply(x: np.ndarray, window: int, fn) -> np.ndarray:
    if window < 3:
        raise AnalysisError(f"window must be >= 3, got {window}")
    if len(x) < window:
        raise AnalysisError(
            f"series of length {len(x)} shorter than window {window}"
        )
    out = np.empty(len(x) - window + 1)
    for i in range(len(out)):
        out[i] = fn(x[i:i + window])
    return out


def rolling_variance(series: np.ndarray, window: int) -> np.ndarray:
    """Windowed variance — rises approaching a fold bifurcation."""
    x = _check_series(series, window)
    return _rolling_apply(x, window, lambda w: float(np.var(w)))


def _lag1(w: np.ndarray) -> float:
    a = w[:-1] - w[:-1].mean()
    b = w[1:] - w[1:].mean()
    denom = np.sqrt(np.sum(a * a) * np.sum(b * b))
    if denom == 0:
        return 0.0
    return float(np.sum(a * b) / denom)


def rolling_autocorrelation(series: np.ndarray, window: int) -> np.ndarray:
    """Windowed lag-1 autocorrelation — the critical-slowing-down signal."""
    x = _check_series(series, window)
    return _rolling_apply(x, window, _lag1)


def rolling_skewness(series: np.ndarray, window: int) -> np.ndarray:
    """Windowed skewness — flickering toward the alternative basin."""
    x = _check_series(series, window)
    return _rolling_apply(
        x, window, lambda w: float(stats.skew(w)) if np.var(w) > 0 else 0.0
    )


def kendall_trend(indicator: np.ndarray) -> float:
    """Kendall's tau of the indicator against time — the trend statistic.

    +1 = monotonically rising (strong warning), 0 = no trend.
    """
    y = _check_series(indicator, 3)
    if np.allclose(y, y[0]):
        return 0.0
    tau, _ = stats.kendalltau(np.arange(len(y)), y)
    if np.isnan(tau):
        return 0.0
    return float(tau)


@dataclass(frozen=True)
class EarlyWarningIndicators:
    """The indicator series and their Kendall trend scores for one window."""

    variance: np.ndarray
    autocorrelation: np.ndarray
    skewness: np.ndarray
    variance_trend: float
    autocorrelation_trend: float
    skewness_trend: float
    window: int


def compute_indicators(
    series: np.ndarray,
    window: int,
    detrend_window: int | None = None,
) -> EarlyWarningIndicators:
    """Full early-warning analysis of a (pre-tip) series.

    ``detrend_window`` defaults to 2× the rolling window; detrending is
    applied before the indicators so slow drift does not masquerade as
    rising variance.
    """
    x = _check_series(series, window + 3)
    detrend_window = 2 * window if detrend_window is None else detrend_window
    residuals = detrend(x, detrend_window)
    var = rolling_variance(residuals, window)
    ac = rolling_autocorrelation(residuals, window)
    sk = rolling_skewness(residuals, window)
    return EarlyWarningIndicators(
        variance=var,
        autocorrelation=ac,
        skewness=sk,
        variance_trend=kendall_trend(var),
        autocorrelation_trend=kendall_trend(ac),
        skewness_trend=kendall_trend(sk),
        window=window,
    )


def warning_verdict(
    indicators: EarlyWarningIndicators,
    tau_threshold: float = 0.5,
    require_both: bool = True,
) -> bool:
    """Binary warning: are variance/autocorrelation trends both rising?

    ``require_both`` demands both indicators exceed the Kendall-tau
    threshold (fewer false alarms); otherwise either suffices (higher
    sensitivity).
    """
    if not 0 <= tau_threshold <= 1:
        raise AnalysisError(f"tau_threshold must be in [0, 1], got {tau_threshold}")
    var_up = indicators.variance_trend >= tau_threshold
    ac_up = indicators.autocorrelation_trend >= tau_threshold
    return (var_up and ac_up) if require_both else (var_up or ac_up)


def detection_roc(
    tipping_scores: np.ndarray,
    control_scores: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """ROC curve of an early-warning score.

    ``tipping_scores`` are the indicator trends measured on pre-tip
    series (positives), ``control_scores`` on stationary controls
    (negatives).  Returns (false-positive rates, true-positive rates)
    sweeping the decision threshold over every observed score.
    """
    pos = _check_series(np.asarray(tipping_scores, float), 1)
    neg = _check_series(np.asarray(control_scores, float), 1)
    thresholds = np.unique(np.concatenate([pos, neg]))
    # sweep from above the max (nothing fires) down (everything fires)
    fprs = [0.0]
    tprs = [0.0]
    for threshold in thresholds[::-1]:
        tprs.append(float(np.mean(pos >= threshold)))
        fprs.append(float(np.mean(neg >= threshold)))
    fprs.append(1.0)
    tprs.append(1.0)
    return np.asarray(fprs), np.asarray(tprs)


def roc_auc(tipping_scores: np.ndarray, control_scores: np.ndarray) -> float:
    """Area under the detection ROC (0.5 = no skill, 1 = perfect)."""
    fprs, tprs = detection_roc(tipping_scores, control_scores)
    return float(np.trapezoid(tprs, fprs))
