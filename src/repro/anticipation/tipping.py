"""A stochastic tipping-point generator for validating early warnings.

Scheffer et al. (paper §3.4.1): "for any dynamical systems there could be
early-warning signals that indicate the system is near a tipping point."
To test detectors we need a system whose tipping time is known: the
canonical saddle-node normal form

    dx = (a + x − x³) dt + σ dW

has two stable branches while |a| < a_c = 2/(3√3) ≈ 0.385; ramping ``a``
through +a_c annihilates the lower equilibrium and the state jumps to
the upper branch — the critical transition.  Approaching the fold, the
restoring eigenvalue goes to zero, producing the critical-slowing-down
signature (rising variance and lag-1 autocorrelation) that
:mod:`repro.anticipation.earlywarning` must detect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["TippingSeries", "SaddleNodeSystem", "critical_forcing"]


def critical_forcing() -> float:
    """The fold bifurcation point a_c = 2 / (3·sqrt(3)) of dx = a + x − x³."""
    return 2.0 / (3.0 * np.sqrt(3.0))


@dataclass(frozen=True)
class TippingSeries:
    """A simulated state trajectory plus its forcing and tip time."""

    times: np.ndarray
    state: np.ndarray
    forcing: np.ndarray
    tip_index: int | None

    @property
    def tipped(self) -> bool:
        """Whether the trajectory jumped to the upper branch."""
        return self.tip_index is not None

    def pre_tip(self, margin: int = 0) -> np.ndarray:
        """State samples strictly before the tip (minus ``margin`` samples).

        Early-warning analysis must only see data available before the
        event; this enforces that discipline.
        """
        end = len(self.state) if self.tip_index is None else self.tip_index
        end = max(end - margin, 0)
        return self.state[:end]


class SaddleNodeSystem:
    """Euler–Maruyama integration of the saddle-node normal form.

    Parameters
    ----------
    noise:
        Diffusion σ.
    dt:
        Integration step.
    tip_level:
        State level whose first crossing is recorded as the tip (the
        lower branch sits near x ≈ −1, the upper near x ≈ +1; 0.5 cleanly
        separates them for the default geometry).
    """

    def __init__(self, noise: float = 0.05, dt: float = 0.01,
                 tip_level: float = 0.5):
        if noise < 0:
            raise ConfigurationError(f"noise must be >= 0, got {noise}")
        if dt <= 0:
            raise ConfigurationError(f"dt must be > 0, got {dt}")
        self.noise = noise
        self.dt = dt
        self.tip_level = tip_level

    def _drift(self, x: float, a: float) -> float:
        return a + x - x**3

    def simulate(
        self,
        forcing: np.ndarray,
        x0: float = -1.0,
        seed: SeedLike = None,
    ) -> TippingSeries:
        """Integrate under a prescribed forcing series a(t)."""
        forcing = np.asarray(forcing, dtype=float)
        if forcing.ndim != 1 or len(forcing) < 2:
            raise ConfigurationError("forcing must be a 1-D array of length >= 2")
        rng = make_rng(seed)
        n = len(forcing)
        x = np.empty(n)
        x[0] = x0
        sqrt_dt = np.sqrt(self.dt)
        noise_draws = rng.normal(0.0, 1.0, size=n - 1)
        tip_index: int | None = None
        for t in range(1, n):
            drift = self._drift(x[t - 1], forcing[t - 1])
            x[t] = x[t - 1] + drift * self.dt \
                + self.noise * sqrt_dt * noise_draws[t - 1]
            if tip_index is None and x[t] > self.tip_level:
                tip_index = t
        return TippingSeries(
            times=np.arange(n) * self.dt,
            state=x,
            forcing=forcing,
            tip_index=tip_index,
        )

    def ramp_to_tipping(
        self,
        n_steps: int = 20_000,
        a_start: float = -0.4,
        a_end: float = 0.5,
        seed: SeedLike = None,
    ) -> TippingSeries:
        """A linear forcing ramp that crosses the fold (the tipping run)."""
        if n_steps < 2:
            raise ConfigurationError(f"n_steps must be >= 2, got {n_steps}")
        forcing = np.linspace(a_start, a_end, n_steps)
        return self.simulate(forcing, x0=-1.0, seed=seed)

    def stationary_control(
        self,
        n_steps: int = 20_000,
        a: float = -0.4,
        seed: SeedLike = None,
    ) -> TippingSeries:
        """Constant forcing far from the fold (the no-tipping control)."""
        if n_steps < 2:
            raise ConfigurationError(f"n_steps must be >= 2, got {n_steps}")
        forcing = np.full(n_steps, a)
        return self.simulate(forcing, x0=-1.0, seed=seed)
