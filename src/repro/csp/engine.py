"""CSP engine selection: object kernels vs compiled bit-matrix vs tiled.

The third and final engine seam, mirroring
:func:`repro.agents.arrayengine.make_engine` and
:func:`repro.networks.engine.make_network_engine`.
:func:`make_csp_engine` resolves an engine ``kind`` (``"object"``,
``"bit"`` or ``"tiled"``) from its argument or the ``REPRO_CSP_ENGINE``
environment variable, defaulting to ``"object"`` so existing runs are
bit-for-bit unchanged until a caller opts in.

The object engine is the original per-assignment ``dict`` machinery,
untouched.  The bit engine compiles the CSP once
(:func:`repro.csp.bitengine.compile_csp`) and runs the resilience
kernels on the compiled arrays; deterministic quantities (fit sets,
quality traces, recovery distances, maintainability levels) and seeded
stochastic repairs (DCSP steps, min-conflicts, greedy bit-flip) match
the object engine exactly, draw-for-draw.  The compiled form costs
Θ(2^n · n_constraints) memory, so non-boolean CSPs and ``n`` beyond the
2^20-state envelope automatically fall back
(:meth:`BitCSPEngine.try_compile` returns ``None`` and counts
``csp.fallbacks``).

The tiled engine (:mod:`repro.csp.tiledengine`) streams the same
lowered kernels over fixed-size blocks, so it has no 2^n memory wall —
only a wall-time one — and compiles up to n ≈ 32.  Its
:meth:`~TiledCSPEngine.try_compile` is a *chain*: problems the full bit
compile handles within the supervisor's memory budget get the
materialized :class:`~repro.csp.bitengine.CompiledBitCSP` (strictly
faster per query), larger ones get the block-streamed
:class:`~repro.csp.tiledengine.TiledBitCSP`, and only non-boolean CSPs
or ``n`` beyond the enumeration cap fall back to the object kernels —
``tiled → bit → object``.  ``REPRO_CSP_TILE_WORKERS`` fans block
enumeration out across processes.  Dispatch sites report ``csp.*``
timers/counters through :mod:`repro.runtime.trace`.
"""

from __future__ import annotations

import os
from abc import ABC
from typing import Optional, Union

import numpy as np

from ..errors import EngineError
from ..runtime import trace
from ..runtime import supervisor
from ..runtime.engines import resolve_engine_kind
from .bitengine import (
    DEFAULT_MAX_BITS,
    BitEngineUnsupported,
    CompiledBitCSP,
    compile_csp,
    estimate_compile_bytes,
)
from .problem import CSP
from .tiledengine import (
    DEFAULT_MAX_BITS_TILED,
    TiledBitCSP,
    compile_tiled,
)

__all__ = [
    "BitCSPEngine",
    "CSPEngine",
    "ObjectCSPEngine",
    "TiledCSPEngine",
    "make_csp_engine",
]

#: any compiled form an engine may hand to the dispatch sites
CompiledCSP = Union[CompiledBitCSP, TiledBitCSP]


class CSPEngine(ABC):
    """One implementation of the CSP resilience kernels (see module docs).

    The seam is deliberately thin: an engine only decides whether a CSP
    gets a compiled form (bit-matrix or tiled).  The algorithms
    themselves live at the dispatch sites
    (:mod:`repro.core.recoverability`, :mod:`repro.csp.dynamic`,
    :mod:`repro.csp.solvers`, :mod:`repro.planning.kmaintain`), each
    with an object path and a compiled path proven equivalent by the
    bit-engine and tiled-engine test suites.
    """

    name: str

    def try_compile(self, csp: CSP) -> Optional[CompiledCSP]:
        """The compiled form to run on, or ``None`` for the object path."""
        return None


class ObjectCSPEngine(CSPEngine):
    """The reference dict-per-assignment implementation (pre-bit behavior)."""

    name = "object"


class BitCSPEngine(CSPEngine):
    """The compiled bit-matrix implementation with automatic fallback."""

    name = "bit"

    def __init__(self, max_bits: int = DEFAULT_MAX_BITS):
        self.max_bits = max_bits

    def try_compile(self, csp: CSP) -> Optional[CompiledBitCSP]:
        budget = supervisor.current().csp_memory_budget()
        if budget is not None:
            estimate = estimate_compile_bytes(csp)
            if estimate is not None and estimate > budget:
                # MAPE memory guard: pre-empt the Θ(2^n) allocation
                # instead of letting it MemoryError mid-run
                tr = trace.current()
                tr.count("csp.fallbacks")
                tr.count("supervisor.preemptions")
                tr.warning(
                    "bit-CSP compile pre-empted by memory budget",
                    estimated_bytes=estimate,
                    budget_bytes=budget,
                )
                return None
        try:
            return compile_csp(csp, max_bits=self.max_bits)
        except BitEngineUnsupported:
            trace.current().count("csp.fallbacks")
            return None


def _tile_workers() -> int:
    """Block fan-out width from ``REPRO_CSP_TILE_WORKERS`` (default 1)."""
    raw = os.environ.get("REPRO_CSP_TILE_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise EngineError(
            f"REPRO_CSP_TILE_WORKERS must be a positive integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise EngineError(
            f"REPRO_CSP_TILE_WORKERS must be a positive integer, got {raw!r}"
        )
    return workers


class TiledCSPEngine(CSPEngine):
    """Block-streamed engine with the ``tiled → bit → object`` chain.

    ``try_compile`` picks the cheapest compiled form that fits:

    1. the fully-materialized :class:`CompiledBitCSP` when ``n`` is
       inside the bit envelope *and* the supervisor's memory budget
       admits the Θ(2^n · n_constraints) allocation — per-query it is
       strictly faster than streaming, so small problems lose nothing;
    2. otherwise the :class:`TiledBitCSP`, whose block size is derived
       from the same budget (:func:`~repro.csp.tiledengine.
       derive_block_bits`) — the budget now *schedules* instead of
       refusing, which is the whole point of the tiled kind;
    3. ``None`` (→ object kernels) only for non-boolean CSPs or ``n``
       beyond ``max_bits`` (default 2^32 states), counted as
       ``csp.fallbacks`` like every other engine fallback.
    """

    name = "tiled"

    def __init__(
        self,
        max_bits: int = DEFAULT_MAX_BITS_TILED,
        bit_max_bits: int = DEFAULT_MAX_BITS,
        block_bits: Optional[int] = None,
        workers: Optional[int] = None,
    ):
        if not hasattr(np, "bitwise_count"):  # pragma: no cover
            raise EngineError(
                "the 'tiled' CSP engine requires numpy >= 2.0 "
                "(np.bitwise_count); this numpy is "
                f"{np.__version__}"
            )
        self.max_bits = max_bits
        self.bit_max_bits = bit_max_bits
        self.block_bits = block_bits
        self.workers = _tile_workers() if workers is None else workers

    def try_compile(self, csp: CSP) -> Optional[CompiledCSP]:
        n = len(csp.variables)
        if n > self.max_bits:
            trace.current().count("csp.fallbacks")
            return None
        budget = supervisor.current().csp_memory_budget()
        if n <= self.bit_max_bits and self.block_bits is None:
            estimate = estimate_compile_bytes(csp)
            if estimate is None:
                # non-boolean: no compiled form exists in either engine
                trace.current().count("csp.fallbacks")
                return None
            if budget is None or estimate <= budget:
                return compile_csp(csp, max_bits=self.bit_max_bits)
            # over budget: degrade to streaming, not to the object path
            trace.current().count("csp.tiled.degrades")
        try:
            return compile_tiled(
                csp,
                max_bits=self.max_bits,
                block_bits=self.block_bits,
                memory_budget_bytes=budget,
                workers=self.workers,
            )
        except BitEngineUnsupported:
            trace.current().count("csp.fallbacks")
            return None


_ENGINES = {
    "object": ObjectCSPEngine,
    "bit": BitCSPEngine,
    "tiled": TiledCSPEngine,
}


def make_csp_engine(kind: "str | CSPEngine | None" = None) -> CSPEngine:
    """Resolve a CSP engine: ``'object'``, ``'bit'`` or ``'tiled'``.

    ``kind=None`` reads the ``REPRO_CSP_ENGINE`` environment variable
    and defaults to ``'object'``, preserving pre-bit behavior unless a
    run opts in; an already-constructed engine passes through unchanged.
    Unrecognized values — passed directly or set in the environment —
    raise :class:`~repro.errors.EngineError` naming all three valid
    choices (resolution shared with the other seams via
    :func:`repro.runtime.engines.resolve_engine_kind`; an installed MAPE
    supervisor may degrade ``tiled``/``bit`` to ``object`` while its
    breaker is open).  ``'tiled'`` additionally requires numpy ≥ 2.0
    for ``np.bitwise_count`` and is rejected with an
    :class:`~repro.errors.EngineError` on older numpy.
    """
    if isinstance(kind, CSPEngine):
        return kind
    return _ENGINES[resolve_engine_kind("csp", kind)]()
