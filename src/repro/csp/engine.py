"""CSP engine selection: reference object kernels vs compiled bit-matrix.

The third and final engine seam, mirroring
:func:`repro.agents.arrayengine.make_engine` and
:func:`repro.networks.engine.make_network_engine`.
:func:`make_csp_engine` resolves an engine ``kind`` (``"object"`` or
``"bit"``) from its argument or the ``REPRO_CSP_ENGINE`` environment
variable, defaulting to ``"object"`` so existing runs are bit-for-bit
unchanged until a caller opts in.

The object engine is the original per-assignment ``dict`` machinery,
untouched.  The bit engine compiles the CSP once
(:func:`repro.csp.bitengine.compile_csp`) and runs the resilience
kernels on the compiled arrays; deterministic quantities (fit sets,
quality traces, recovery distances, maintainability levels) and seeded
stochastic repairs (DCSP steps, min-conflicts, greedy bit-flip) match
the object engine exactly, draw-for-draw.  The compiled form costs
Θ(2^n · n_constraints) memory, so non-boolean CSPs and ``n`` beyond the
2^20-state envelope automatically fall back to the object kernels
(:meth:`BitCSPEngine.try_compile` returns ``None`` and counts
``csp.fallbacks``).  Dispatch sites report ``csp.*`` timers/counters
through :mod:`repro.runtime.trace`.
"""

from __future__ import annotations

from abc import ABC
from typing import Optional

from ..runtime import trace
from ..runtime import supervisor
from ..runtime.engines import resolve_engine_kind
from .bitengine import (
    DEFAULT_MAX_BITS,
    BitEngineUnsupported,
    CompiledBitCSP,
    compile_csp,
    estimate_compile_bytes,
)
from .problem import CSP

__all__ = [
    "BitCSPEngine",
    "CSPEngine",
    "ObjectCSPEngine",
    "make_csp_engine",
]


class CSPEngine(ABC):
    """One implementation of the CSP resilience kernels (see module docs).

    The seam is deliberately thin: an engine only decides whether a CSP
    gets a compiled bit-matrix form.  The algorithms themselves live at
    the dispatch sites (:mod:`repro.core.recoverability`,
    :mod:`repro.csp.dynamic`, :mod:`repro.csp.solvers`,
    :mod:`repro.planning.kmaintain`), each with an object path and a
    compiled path proven equivalent by the bit-engine test suite.
    """

    name: str

    def try_compile(self, csp: CSP) -> Optional[CompiledBitCSP]:
        """The compiled form to run on, or ``None`` for the object path."""
        return None


class ObjectCSPEngine(CSPEngine):
    """The reference dict-per-assignment implementation (pre-bit behavior)."""

    name = "object"


class BitCSPEngine(CSPEngine):
    """The compiled bit-matrix implementation with automatic fallback."""

    name = "bit"

    def __init__(self, max_bits: int = DEFAULT_MAX_BITS):
        self.max_bits = max_bits

    def try_compile(self, csp: CSP) -> Optional[CompiledBitCSP]:
        budget = supervisor.current().csp_memory_budget()
        if budget is not None:
            estimate = estimate_compile_bytes(csp)
            if estimate is not None and estimate > budget:
                # MAPE memory guard: pre-empt the Θ(2^n) allocation
                # instead of letting it MemoryError mid-run
                tr = trace.current()
                tr.count("csp.fallbacks")
                tr.count("supervisor.preemptions")
                tr.warning(
                    "bit-CSP compile pre-empted by memory budget",
                    estimated_bytes=estimate,
                    budget_bytes=budget,
                )
                return None
        try:
            return compile_csp(csp, max_bits=self.max_bits)
        except BitEngineUnsupported:
            trace.current().count("csp.fallbacks")
            return None


_ENGINES = {
    "object": ObjectCSPEngine,
    "bit": BitCSPEngine,
}


def make_csp_engine(kind: "str | CSPEngine | None" = None) -> CSPEngine:
    """Resolve a CSP engine: ``'object'`` (reference) or ``'bit'``.

    ``kind=None`` reads the ``REPRO_CSP_ENGINE`` environment variable
    and defaults to ``'object'``, preserving pre-bit behavior unless a
    run opts in; an already-constructed engine passes through unchanged.
    Unrecognized values — passed directly or set in the environment —
    raise :class:`~repro.errors.EngineError` naming the valid choices
    (resolution shared with the other seams via
    :func:`repro.runtime.engines.resolve_engine_kind`; an installed MAPE
    supervisor may degrade ``bit`` to ``object`` while its breaker is
    open).
    """
    if isinstance(kind, CSPEngine):
        return kind
    return _ENGINES[resolve_engine_kind("csp", kind)]()
