"""Constraint satisfaction problems over finite-domain variables.

:class:`CSP` bundles variables and constraints and exposes the two views
the resilience model needs:

* the *crisp* view — an assignment is **fit** iff it satisfies every
  constraint (the paper's ``s ∈ C``);
* the *graded* view — ``quality(assignment)`` is the percentage of
  satisfied constraints, which feeds Q(t) in the Bruneau metric when a
  system operates partially degraded.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence

from ..errors import ConfigurationError
from .bitstring import BitString
from .constraints import Assignment, Constraint
from .variables import Variable, boolean_variables

__all__ = ["CSP", "boolean_csp"]


class CSP:
    """A finite-domain constraint satisfaction problem."""

    def __init__(self, variables: Sequence[Variable], constraints: Sequence[Constraint]):
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate variable names in CSP")
        self.variables: tuple[Variable, ...] = tuple(variables)
        self.by_name: Dict[str, Variable] = {v.name: v for v in self.variables}
        self.constraints: tuple[Constraint, ...] = tuple(constraints)
        for c in self.constraints:
            for var in c.scope:
                if var not in self.by_name:
                    raise ConfigurationError(
                        f"constraint {c.name!r} references unknown variable {var!r}"
                    )
        # per-variable constraint index, precomputed once: constraints_of
        # and the solvers' consistency checks are on hot paths, so they
        # must not rescan the constraint list (or rebuild tuples) per call
        index: Dict[str, list[Constraint]] = {n: [] for n in names}
        for c in self.constraints:
            for var in c.scope:
                index[var].append(c)
        self._constraints_of: Dict[str, tuple[Constraint, ...]] = {
            name: tuple(cs) for name, cs in index.items()
        }

    # -- structure --------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Variable names in declaration order."""
        return tuple(v.name for v in self.variables)

    def constraints_of(self, name: str) -> Sequence[Constraint]:
        """Constraints whose scope includes variable ``name``.

        Served from the index precomputed at construction (declaration
        order within each variable, like the constraint list itself).
        """
        try:
            return self._constraints_of[name]
        except KeyError:
            raise ConfigurationError(f"unknown variable {name!r}") from None

    @property
    def num_configurations(self) -> int:
        """Size of the full configuration space (product of domain sizes)."""
        size = 1
        for v in self.variables:
            size *= len(v.domain)
        return size

    # -- evaluation -------------------------------------------------------

    def validate_assignment(self, assignment: Assignment) -> None:
        """Raise :class:`ConfigurationError` if the assignment is ill-typed."""
        for name, value in assignment.items():
            var = self.by_name.get(name)
            if var is None:
                raise ConfigurationError(f"assignment binds unknown variable {name!r}")
            if not var.contains(value):
                raise ConfigurationError(
                    f"value {value!r} not in domain of variable {name!r}"
                )

    def is_complete(self, assignment: Assignment) -> bool:
        """Whether every variable is bound."""
        return all(name in assignment for name in self.by_name)

    def violated_constraints(self, assignment: Assignment) -> list[Constraint]:
        """All applicable constraints the assignment violates."""
        return [
            c
            for c in self.constraints
            if c.applicable(assignment) and not c.satisfied(assignment)
        ]

    def conflict_count(self, assignment: Assignment) -> int:
        """Number of violated applicable constraints."""
        return len(self.violated_constraints(assignment))

    def is_fit(self, assignment: Assignment) -> bool:
        """The paper's fitness test: ``s ∈ C`` iff no constraint is violated."""
        return self.is_complete(assignment) and self.conflict_count(assignment) == 0

    def quality(self, assignment: Assignment) -> float:
        """Percentage (0..100) of constraints satisfied — the Q(t) signal.

        An empty constraint set means the system is trivially at full
        quality.
        """
        if not self.constraints:
            return 100.0
        satisfied = sum(
            1
            for c in self.constraints
            if c.applicable(assignment) and c.satisfied(assignment)
        )
        return 100.0 * satisfied / len(self.constraints)

    # -- enumeration (small problems) --------------------------------------

    def all_assignments(self) -> Iterator[Dict[str, object]]:
        """Enumerate every complete assignment (exponential; small CSPs only)."""
        names = self.names
        domains = [self.by_name[n].domain for n in names]

        def rec(i: int, acc: Dict[str, object]) -> Iterator[Dict[str, object]]:
            if i == len(names):
                yield dict(acc)
                return
            for value in domains[i]:
                acc[names[i]] = value
                yield from rec(i + 1, acc)
            acc.pop(names[i], None)

        yield from rec(0, {})

    def fit_assignments(self) -> Iterator[Dict[str, object]]:
        """Enumerate the fit set C (exponential; small CSPs only)."""
        for a in self.all_assignments():
            if self.conflict_count(a) == 0:
                yield a

    # -- bit-string bridge --------------------------------------------------

    def assignment_from_bits(self, bits: BitString) -> Dict[str, int]:
        """Interpret a bit string as an assignment (boolean CSPs only)."""
        if bits.n != len(self.variables):
            raise ConfigurationError(
                f"bit string of length {bits.n} for a {len(self.variables)}-variable CSP"
            )
        for v in self.variables:
            if not v.is_boolean:
                raise ConfigurationError(
                    f"variable {v.name!r} is not boolean; cannot use bit strings"
                )
        return {name: bit for name, bit in zip(self.names, bits)}

    def bits_from_assignment(self, assignment: Assignment) -> BitString:
        """Pack a complete boolean assignment into a bit string."""
        values = []
        for v in self.variables:
            if not v.is_boolean:
                raise ConfigurationError(
                    f"variable {v.name!r} is not boolean; cannot use bit strings"
                )
            if v.name not in assignment:
                raise ConfigurationError(f"assignment misses variable {v.name!r}")
            values.append(int(assignment[v.name]))  # type: ignore[arg-type]
        return BitString.from_bits(values)

    def fit_bitstrings(self) -> frozenset[BitString]:
        """The fit set C as bit strings (boolean CSPs, small n only)."""
        return frozenset(
            self.bits_from_assignment(a) for a in self.fit_assignments()
        )


def boolean_csp(n: int, constraints: Iterable[Constraint], prefix: str = "x") -> CSP:
    """Build a CSP over ``n`` boolean component variables.

    This is the paper's canonical setting: system status = a length-n bit
    string; the environment = a set of constraints over it.
    """
    return CSP(boolean_variables(n, prefix=prefix), tuple(constraints))
