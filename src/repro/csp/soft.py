"""Soft (cost-based) environments.

The paper's general model (§4.2): "The fitness could be represented by
a cost function over the set of all configurations.  For simplicity,
let us assume here that the cost function can be represented as a
subset C of all fit configurations."  The crisp subset is the default
throughout the library; this module implements the *un*-simplified
version: weighted constraints whose violation costs add up, a quality
signal derived from total cost, and a greedy cost-descent repair that
generalizes the one-bit-at-a-time recovery to graded environments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .constraints import Assignment, Constraint
from .problem import CSP

__all__ = ["WeightedConstraint", "SoftCSP"]


@dataclass(frozen=True)
class WeightedConstraint:
    """A constraint with a violation cost (weight)."""

    constraint: Constraint
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"constraint weight must be > 0, got {self.weight}"
            )

    def cost(self, assignment: Assignment) -> float:
        """``weight`` when violated, else 0."""
        if not self.constraint.applicable(assignment):
            return 0.0
        return 0.0 if self.constraint.satisfied(assignment) else self.weight


class SoftCSP:
    """A cost function over configurations, built from weighted pieces.

    ``hard`` constraints (infinite effective weight) must hold for a
    configuration to be *fit*; ``soft`` constraints price degradation.
    """

    def __init__(self, base: CSP, weights: Sequence[float] | None = None,
                 hard_indices: Sequence[int] = ()):
        self.base = base
        n = len(base.constraints)
        weights = [1.0] * n if weights is None else list(weights)
        if len(weights) != n:
            raise ConfigurationError(
                f"{len(weights)} weights for {n} constraints"
            )
        hard = set(hard_indices)
        for i in hard:
            if not 0 <= i < n:
                raise ConfigurationError(f"hard index {i} out of range")
        self.weighted = tuple(
            WeightedConstraint(c, w)
            for i, (c, w) in enumerate(zip(base.constraints, weights))
            if i not in hard
        )
        self.hard = tuple(
            base.constraints[i] for i in sorted(hard)
        )

    @property
    def max_cost(self) -> float:
        """Total soft weight (the all-violated worst case)."""
        return sum(w.weight for w in self.weighted)

    def cost(self, assignment: Assignment) -> float:
        """Sum of violated soft weights; ``inf`` if any hard one fails."""
        for c in self.hard:
            if c.applicable(assignment) and not c.satisfied(assignment):
                return float("inf")
        return sum(w.cost(assignment) for w in self.weighted)

    def quality(self, assignment: Assignment) -> float:
        """0..100 quality: 100 × (1 − cost/max_cost); 0 on hard violation."""
        c = self.cost(assignment)
        if not np.isfinite(c):
            return 0.0
        if self.max_cost == 0:
            return 100.0
        return 100.0 * (1.0 - c / self.max_cost)

    def is_fit(self, assignment: Assignment) -> bool:
        """Fit = zero cost (every constraint, hard and soft, holds)."""
        return self.cost(assignment) == 0.0

    def descend(
        self,
        start: Assignment,
        max_steps: int = 1000,
        seed: SeedLike = None,
    ) -> tuple[Dict[str, object], list[float]]:
        """Greedy cost descent, one variable change per step.

        Returns the final assignment and the cost trajectory (including
        the start).  Stops at zero cost, at a local minimum, or at the
        step budget — soft environments can have plateaus the crisp
        repair never sees, which is why this returns the trajectory for
        inspection rather than a success flag alone.
        """
        rng = make_rng(seed)
        assignment = dict(start)
        self.base.validate_assignment(assignment)
        if not self.base.is_complete(assignment):
            raise ConfigurationError("descend requires a complete assignment")
        costs = [self.cost(assignment)]
        for _ in range(max_steps):
            current = costs[-1]
            if current == 0.0:
                break
            best_moves: list[tuple[str, object]] = []
            best_cost = current
            for var in self.base.variables:
                for value in var.domain:
                    if value == assignment[var.name]:
                        continue
                    trial = dict(assignment)
                    trial[var.name] = value
                    c = self.cost(trial)
                    if c < best_cost:
                        best_cost = c
                        best_moves = [(var.name, value)]
                    elif c == best_cost and best_moves:
                        best_moves.append((var.name, value))
            if not best_moves:
                break  # local minimum
            name, value = best_moves[int(rng.integers(len(best_moves)))]
            assignment[name] = value
            costs.append(best_cost)
        return assignment, costs
