"""Tiled bit-CSP engine: block-streamed state-space kernels past 2^20.

:class:`~repro.csp.bitengine.CompiledBitCSP` materializes every array
over the full ``0 .. 2^n - 1`` range, which caps it at
``DEFAULT_MAX_BITS = 20`` (~1M states) and turns the supervisor's
memory budget into a *refusal* (``estimate_compile_bytes`` pre-emption
→ object fallback).  This module breaks that 2^n wall: the same lowered
constraint kernels (:func:`~repro.csp.bitengine.lower_csp`) are
streamed over fixed-size blocks of the state space, so nothing of size
2^n is ever allocated and the practical cap moves to n ≈ 28–32.

Three pieces make the compiled form scale:

* **block scheduler** — :func:`derive_block_bits` turns the
  supervisor's ``memory_budget_mb`` into a block size instead of a
  refusal: the largest power-of-two block whose in-flight footprint
  (``2^b · (TILE_STATE_BYTES + n_constraints)`` bytes per concurrent
  worker) fits the budget, clamped to
  ``[MIN_BLOCK_BITS, MAX_BLOCK_BITS]``.  An impossible budget means
  more, smaller blocks — never ``None``.
* **streamed evaluation** — :meth:`TiledBitCSP.fit_indices` /
  ``quality`` / ``conflict_counts`` run each lowered evaluator once per
  block; fit states accumulate as a sorted int64 index array
  (Θ(|C|) memory, not Θ(2^n)).  Blocks optionally fan out across
  processes through the PR-2 executor
  (:func:`repro.runtime.executor.run_points`).  Dispatch sites that
  index the bit engine's materialized arrays
  (``compiled.violations[...]``, ``compiled.quality_table()[...]``)
  keep working unchanged via lazy views that compute the requested
  entries on demand.
* **implicit-frontier BFS** — :meth:`TiledBitCSP.min_distances_masks`,
  :func:`implicit_add_bit_levels` and :func:`implicit_clear_bit_ball`
  are the ``hamming_distances`` / ``add_bit_levels`` /
  ``clear_bit_ball`` equivalents that keep the frontier as sorted index
  arrays with chunked XOR neighbor generation, instead of a ``(2^n,)``
  level array — recoverability and K-maintainability cost
  Θ(ball volume), not Θ(state space).

Equivalence contract, pinned by ``tests/csp/test_tiledengine.py``: for
n ≤ 20 every quantity is byte-identical to the bit engine (which is
itself pinned to the object engine), and for n > 20 results are
invariant under the block size.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..runtime import trace
from .bitstring import BitString
from .bitengine import (
    SAT_ROW_BYTES,
    BitEngineUnsupported,
    PackedStateBridge,
    _flip_masks,
    lower_csp,
)
from .problem import CSP

__all__ = [
    "DEFAULT_BLOCK_BITS",
    "DEFAULT_MAX_BITS_TILED",
    "MAX_BLOCK_BITS",
    "MIN_BLOCK_BITS",
    "TILE_STATE_BYTES",
    "TiledBitCSP",
    "compile_tiled",
    "derive_block_bits",
    "implicit_add_bit_levels",
    "implicit_clear_bit_ball",
]

#: hard cap on problem size for the tiled engine.  2^32 states stream
#: in bounded memory, but wall time is still Θ(2^n): beyond ~32 bits
#: exact enumeration stops being a realistic analysis.
DEFAULT_MAX_BITS_TILED = 32

#: block size used when no memory budget is installed (2^18 = 256K
#: states ≈ 12 MiB in flight for a handful of constraints)
DEFAULT_BLOCK_BITS = 18
#: smallest scheduled block — below 2^10 the per-block Python overhead
#: dominates the vectorized kernels
MIN_BLOCK_BITS = 10
#: largest scheduled block (2^24 states) — matches the biggest
#: footprint the full bit engine would ever have allocated
MAX_BLOCK_BITS = 24

#: per-state bytes in flight while one block streams: the int64 block
#: states (8), the int32 violation accumulator (4), the evaluator's
#: int64 temporaries (popcount/subcube gather + comparison, ~16), the
#: bool satisfaction row (1), plus ~1 slack for the compressed fit
#: output — per-constraint sat rows are added separately
TILE_STATE_BYTES = 30


def derive_block_bits(
    n: int,
    n_constraints: int,
    memory_budget_bytes: Optional[int] = None,
    workers: int = 1,
) -> int:
    """Block-size exponent whose in-flight footprint fits the budget.

    This is where the supervisor's ``memory_budget_mb`` becomes block
    *scheduling* instead of compile *refusal*: one streamed block costs
    ``2^b · (TILE_STATE_BYTES + SAT_ROW_BYTES · n_constraints)`` bytes,
    ``workers`` blocks are in flight at once, and the scheduler picks
    the largest ``b`` keeping that under budget.  The result is clamped
    to ``[MIN_BLOCK_BITS, min(n, MAX_BLOCK_BITS)]`` — an impossible
    budget degrades to more, smaller blocks rather than refusing, so
    the tiled engine never returns the object fallback on memory
    grounds alone.
    """
    hi = min(n, MAX_BLOCK_BITS)
    lo = min(n, MIN_BLOCK_BITS)
    if memory_budget_bytes is None:
        return max(lo, min(hi, DEFAULT_BLOCK_BITS))
    per_state = (TILE_STATE_BYTES + SAT_ROW_BYTES * n_constraints) * max(
        1, workers
    )
    b = hi
    while b > lo and (1 << b) * per_state > memory_budget_bytes:
        b -= 1
    return b


# -- implicit-frontier hypercube kernels -----------------------------------


def _isin_sorted(values: np.ndarray, sorted_arr: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a sorted int64 array, via searchsorted."""
    if sorted_arr.size == 0:
        return np.zeros(np.shape(values), dtype=bool)
    pos = np.searchsorted(sorted_arr, values)
    pos = np.minimum(pos, sorted_arr.size - 1)
    return sorted_arr[pos] == values


def _xor_expand(
    frontier: np.ndarray,
    bits: np.ndarray,
    settled: np.ndarray,
    *,
    down: bool = False,
    chunk: int = 1 << 20,
) -> np.ndarray:
    """Unsettled XOR neighbors of ``frontier``, sorted and unique.

    The implicit-frontier replacement for the bit engine's
    ``frontier[:, None] ^ flip_masks`` over a (2^n,) distance array:
    membership comes from ``settled`` (a sorted index array) instead of
    array indexing, and the broadcast is chunked so at most ~``chunk``
    candidate masks exist at once.  ``down=True`` keeps only edges that
    clear a set bit (``cand < source``) — the predecessor edges of the
    repair encoding.
    """
    parts = []
    step = max(1, chunk // max(1, bits.size))
    for s in range(0, frontier.size, step):
        f = frontier[s : s + step]
        cand = f[:, None] ^ bits
        if down:
            cand = cand[cand < f[:, None]]
        else:
            cand = cand.ravel()
        cand = np.unique(cand)
        cand = cand[~_isin_sorted(cand, settled)]
        if cand.size:
            parts.append(cand)
    if not parts:
        return np.zeros(0, dtype=np.int64)
    if len(parts) == 1:
        return parts[0]
    return np.unique(np.concatenate(parts))


def implicit_add_bit_levels(
    goal_indices: np.ndarray,
    n: int,
    max_level: Optional[int] = None,
    *,
    chunk: int = 1 << 20,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`~repro.csp.bitengine.add_bit_levels` on index arrays.

    Reverse BFS from the goals along "clear one set bit" predecessor
    edges, returning ``(states, levels)``: the sorted masks of every
    state leveled within ``max_level`` and their exact levels — never a
    ``(2^n,)`` array, so K-maintainability levels cost Θ(leveled set).
    """
    goal = np.unique(np.asarray(goal_indices, dtype=np.int64))
    max_level = n if max_level is None else min(max_level, n)
    bits = _flip_masks(n)
    settled = goal
    states_acc = [goal]
    levels_acc = [np.zeros(goal.size, dtype=np.int32)]
    frontier = goal
    d = 0
    while frontier.size and d < max_level:
        cand = _xor_expand(frontier, bits, settled, down=True, chunk=chunk)
        if not cand.size:
            break
        d += 1
        settled = np.union1d(settled, cand)
        states_acc.append(cand)
        levels_acc.append(np.full(cand.size, d, dtype=np.int32))
        frontier = cand
    states = np.concatenate(states_acc)
    levels = np.concatenate(levels_acc)
    order = np.argsort(states, kind="stable")
    return states[order], levels[order]


def implicit_clear_bit_ball(
    seed_indices: np.ndarray,
    n: int,
    radius: int,
    *,
    chunk: int = 1 << 20,
) -> np.ndarray:
    """:func:`~repro.csp.bitengine.clear_bit_ball` on index arrays.

    The debris damage envelope as a sorted mask array: all states
    reachable from the seeds by clearing ≤ ``radius`` bits, costing
    Θ(ball volume) instead of Θ(2^n).
    """
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")
    member = np.unique(np.asarray(seed_indices, dtype=np.int64))
    bits = _flip_masks(n)
    frontier = member
    for _ in range(min(radius, n)):
        if not frontier.size:
            break
        cand = _xor_expand(frontier, bits, member, down=True, chunk=chunk)
        if not cand.size:
            break
        member = np.union1d(member, cand)
        frontier = cand
    return member


# -- lazy whole-space views -------------------------------------------------


class _LazyViolationView:
    """``compiled.violations`` without the (2^n,) array behind it.

    The DCSP and repair loops index the bit engine's materialized
    violation counts with scalars, 1-D flip batches, and 2-D
    ``masks[:, None] ^ flip_masks`` neighborhoods; this view accepts
    the same indexing and evaluates just the requested states through
    the lowered kernels, so those pinned loops run unchanged on the
    tiled engine.
    """

    def __init__(self, tiled: "TiledBitCSP"):
        self._tiled = tiled
        self.dtype = np.dtype(np.int32)

    @property
    def shape(self) -> tuple[int, ...]:
        return (self._tiled.size,)

    def __len__(self) -> int:
        return self._tiled.size

    def __getitem__(self, masks):
        if isinstance(masks, (int, np.integer)):
            return self._tiled._violations_of(
                np.asarray([masks], dtype=np.int64)
            )[0]
        return self._tiled._violations_of(np.asarray(masks, dtype=np.int64))


class _LazyQualityView:
    """``compiled.quality_table()`` computed per lookup, same indexing."""

    def __init__(self, tiled: "TiledBitCSP"):
        self._tiled = tiled
        self.dtype = np.dtype(np.float64)

    @property
    def shape(self) -> tuple[int, ...]:
        return (self._tiled.size,)

    def __len__(self) -> int:
        return self._tiled.size

    def __getitem__(self, masks):
        if isinstance(masks, (int, np.integer)):
            return self._tiled._quality_of(
                np.asarray([masks], dtype=np.int64)
            )[0]
        return self._tiled._quality_of(np.asarray(masks, dtype=np.int64))


def _block_worker(fn, value, seed):
    """Executor bridge: one block range through the fit enumerator."""
    lo, hi = value
    return fn(lo, hi)


class TiledBitCSP(PackedStateBridge):
    """A boolean CSP compiled to block-streamed form (no 2^n arrays).

    Drop-in for :class:`~repro.csp.bitengine.CompiledBitCSP` at every
    dispatch site: the same packed-mask convention, the same methods
    (``fit_indices`` / ``fit_bitstrings`` / ``quality`` /
    ``conflict_counts`` / ``min_distances`` / ``min_distances_masks`` /
    ``conflicted_variable_order`` / ``assignment_of`` / ``mask_of``)
    and lazily-indexed ``violations`` / ``quality_table()`` views —
    but everything of size 2^n is replaced by streaming over
    ``2^block_bits``-state blocks and sorted index arrays.

    Compilation itself is O(constraints) — lowering only.  The fit set
    is enumerated on first use (``fit_indices``), one block at a time,
    optionally fanned out over ``workers`` processes; DCSP timelines at
    large n that never touch the fit set therefore pay nothing for it.
    """

    #: engine kind whose dispatch sites this compiled form serves —
    #: used to label ``csp.*`` timers/counters at the dispatch sites
    engine_label = "tiled"

    def __init__(
        self,
        csp: CSP,
        max_bits: int = DEFAULT_MAX_BITS_TILED,
        block_bits: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        workers: int = 1,
    ):
        n = len(csp.variables)
        if n > max_bits:
            raise BitEngineUnsupported(
                f"{n}-variable CSP exceeds the tiled engine's "
                f"2^{max_bits}-state enumeration cap"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        evaluators, scope_mat, val_for_bit = lower_csp(csp)
        self.csp = csp
        self.n = n
        self.size = 1 << n
        self.names: tuple[str, ...] = csp.names
        self.workers = workers
        if block_bits is None:
            block_bits = derive_block_bits(
                n, len(csp.constraints), memory_budget_bytes, workers
            )
        block_bits = max(1, min(block_bits, n))
        self.block_bits = block_bits
        #: states per streamed block
        self.block_size = 1 << block_bits
        #: total blocks covering the state space
        self.n_blocks = 1 << (n - block_bits)
        #: single-bit flip masks, ``flip_masks[i] = 1 << i``
        self.flip_masks: np.ndarray = _flip_masks(n)
        self._val_for_bit: list[tuple] = val_for_bit
        #: variable indices in lexicographic-name order (conflicted-set
        #: ordering of the object repair loops)
        self.order_by_name: tuple[int, ...] = tuple(
            sorted(range(n), key=lambda i: self.names[i])
        )
        self._evaluators = evaluators
        #: (n_constraints, n) scope membership matrix
        self.scope_mat: np.ndarray = scope_mat
        #: lazy stand-in for the bit engine's (2^n,) violation counts
        self.violations = _LazyViolationView(self)
        self._quality_view = _LazyQualityView(self)
        self._fit_indices: Optional[np.ndarray] = None
        trace.current().count("csp.compiles")

    # -- per-block kernels -------------------------------------------------

    def _violations_of(self, masks: np.ndarray) -> np.ndarray:
        """Violated-constraint counts for the given masks (any shape)."""
        if not self._evaluators:
            return np.zeros(masks.shape, dtype=np.int32)
        out = np.zeros(masks.shape, dtype=np.int32)
        for evaluate in self._evaluators:
            out += ~evaluate(masks)
        return out

    def _quality_of(self, masks: np.ndarray) -> np.ndarray:
        """Q for the given masks, float-identical to the bit engine."""
        n_c = len(self._evaluators)
        if n_c == 0:
            return np.full(masks.shape, 100.0)
        satisfied = (n_c - self._violations_of(masks)).astype(np.int64)
        return 100.0 * satisfied / n_c

    def block_ranges(self) -> list[tuple[int, int]]:
        """The ``[lo, hi)`` state ranges the streamed kernels cover."""
        return [
            (lo, lo + self.block_size)
            for lo in range(0, self.size, self.block_size)
        ]

    def _fit_in_range(self, lo: int, hi: int) -> np.ndarray:
        """Masks of fit states in ``[lo, hi)``, ascending."""
        states = np.arange(lo, hi, dtype=np.int64)
        return states[self._violations_of(states) == 0]

    def _materialize_fit(self) -> np.ndarray:
        tr = trace.current()
        ranges = self.block_ranges()
        with tr.timer("csp.tiled.enumerate"):
            parts: Optional[list[np.ndarray]] = None
            if self.workers > 1 and len(ranges) > 1:
                from ..runtime.executor import PointTask, run_points

                outcomes = run_points(
                    _block_worker,
                    self._fit_in_range,
                    [
                        PointTask(index=i, value=r)
                        for i, r in enumerate(ranges)
                    ],
                    n_jobs=self.workers,
                )
                if all(o.ok for o in outcomes):
                    # outcomes come back in task order: ascending blocks
                    parts = [o.value for o in outcomes]
                else:
                    # a dead or unpicklable worker degrades to the
                    # serial path rather than failing the analysis
                    tr.count("csp.tiled.fanout_fallbacks")
            if parts is None:
                parts = [self._fit_in_range(lo, hi) for lo, hi in ranges]
        tr.count("csp.tiled.blocks", len(ranges))
        return np.concatenate(parts) if parts else np.zeros(0, np.int64)

    # -- whole-space views -------------------------------------------------

    @property
    def fit_indices(self) -> np.ndarray:
        """Masks of all fit states, ascending (streamed on first use)."""
        if self._fit_indices is None:
            self._fit_indices = self._materialize_fit()
        return self._fit_indices

    def fit_bitstrings(self) -> frozenset[BitString]:
        """The fit set C, identical to :meth:`CSP.fit_bitstrings`."""
        return frozenset(BitString(self.n, int(m)) for m in self.fit_indices)

    def quality_table(self) -> _LazyQualityView:
        """Lazily-indexed stand-in for the bit engine's quality table."""
        return self._quality_view

    def quality(self, masks) -> np.ndarray:
        """Vectorized :meth:`CSP.quality` for a batch of state masks."""
        return self._quality_of(np.asarray(masks, dtype=np.int64))

    def conflict_counts(self, masks) -> np.ndarray:
        """Vectorized :meth:`CSP.conflict_count` for a batch of masks."""
        return self._violations_of(np.asarray(masks, dtype=np.int64))

    # -- recoverability kernel ---------------------------------------------

    #: fit-set size below which distance queries use the direct
    #: XOR+popcount broadcast instead of the frontier walk: O(q · F)
    #: work with a tiny constant beats growing a Hamming ball that may
    #: need to cover most of the cube to reach a far query
    DIRECT_FIT_LIMIT = 1 << 16

    def min_distances_masks(self, masks) -> np.ndarray:
        """Min Hamming distance into the fit set for packed state masks.

        Two regimes, both exact.  A *sparse* fit set (≤
        :data:`DIRECT_FIT_LIMIT` states) answers each query directly —
        one chunked ``popcount(query ^ fit)`` broadcast, O(q · F).  A
        *dense* fit set walks an implicit BFS frontier outward from the
        fit states (sorted index arrays + chunked XOR expansion,
        stopping as soon as every query is settled) — dense fit sets
        reach everything within a few levels, so the settled set never
        approaches 2^n.  ``-1`` when the fit set is empty, matching
        :meth:`CompiledBitCSP.min_distances_masks`.
        """
        masks = np.asarray(masks, dtype=np.int64)
        fit = self.fit_indices
        if fit.size == 0 or masks.size == 0:
            return np.full(masks.shape, -1 if fit.size == 0 else 0, np.int64)
        queries, inverse = np.unique(masks.ravel(), return_inverse=True)
        if fit.size <= self.DIRECT_FIT_LIMIT:
            qdist = np.empty(queries.size, dtype=np.int64)
            step = max(1, self.block_size // fit.size)
            for s in range(0, queries.size, step):
                q = queries[s : s + step]
                qdist[s : s + step] = np.bitwise_count(
                    q[:, None] ^ fit
                ).min(axis=1)
        else:
            qdist = np.full(queries.size, -1, dtype=np.int64)
            qdist[_isin_sorted(queries, fit)] = 0
            settled = fit
            frontier = fit
            d = 0
            while frontier.size and (qdist < 0).any() and d < self.n:
                frontier = _xor_expand(
                    frontier, self.flip_masks, settled, chunk=self.block_size
                )
                if not frontier.size:
                    break
                d += 1
                settled = np.union1d(settled, frontier)
                newly = (qdist < 0) & _isin_sorted(queries, frontier)
                qdist[newly] = d
        return qdist[inverse].reshape(masks.shape)

    def min_distances(self, states: Sequence[BitString]) -> np.ndarray:
        """Drop-in for :meth:`PackedFitSet.min_distances` on the fit set."""
        states = list(states)
        if not len(self.fit_indices):
            return np.full(len(states), -1, dtype=np.int64)
        for s in states:
            if s.n != self.n:
                raise ConfigurationError(
                    f"state has {s.n} bits but fit set has {self.n}"
                )
        if not states:
            return np.zeros(0, dtype=np.int64)
        masks = np.fromiter(
            (s.mask for s in states), dtype=np.int64, count=len(states)
        )
        return self.min_distances_masks(masks)

    # -- state <-> assignment bridge: see PackedStateBridge ----------------

    def conflicted_variable_order(self, mask: int) -> list[int]:
        """Scope variables of violated constraints, sorted by name.

        Same contract as the bit engine's, evaluated for the one
        requested state instead of read from the (n_constraints, 2^n)
        satisfaction matrix.
        """
        one = np.asarray([mask], dtype=np.int64)
        violated = np.fromiter(
            (not bool(evaluate(one)[0]) for evaluate in self._evaluators),
            dtype=bool,
            count=len(self._evaluators),
        )
        if not violated.any():
            return []
        in_conflict = self.scope_mat[violated].any(axis=0)
        return [i for i in self.order_by_name if in_conflict[i]]


def compile_tiled(
    csp: CSP,
    max_bits: int = DEFAULT_MAX_BITS_TILED,
    block_bits: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    workers: int = 1,
) -> TiledBitCSP:
    """Compile ``csp`` to tiled form, caching the result on the CSP.

    The cache (like :func:`~repro.csp.bitengine.compile_csp`'s) is safe
    because :class:`CSP` is immutable; it is keyed on the resolved
    scheduling parameters, so changing the block size or worker count
    recompiles rather than silently reusing the old schedule.
    """
    n = len(csp.variables)
    if n > max_bits:
        raise BitEngineUnsupported(
            f"{n}-variable CSP exceeds the tiled engine's "
            f"2^{max_bits}-state enumeration cap"
        )
    key = (block_bits, memory_budget_bytes, workers)
    cached = getattr(csp, "_tiled_compiled", None)
    if cached is not None and getattr(csp, "_tiled_key", None) == key:
        return cached
    compiled = TiledBitCSP(
        csp,
        max_bits=max_bits,
        block_bits=block_bits,
        memory_budget_bytes=memory_budget_bytes,
        workers=workers,
    )
    csp._tiled_compiled = compiled  # type: ignore[attr-defined]
    csp._tiled_key = key  # type: ignore[attr-defined]
    return compiled
