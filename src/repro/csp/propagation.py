"""Constraint propagation: AC-3 arc consistency.

The DCSP literature the paper builds on [9],[28] leans on propagation to
prune configuration spaces before (re)solving.  AC-3 removes values that
cannot participate in any satisfying assignment of a binary constraint,
detecting some unsatisfiable environments without search and shrinking
the space the repair process must explore.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Tuple

from ..errors import ConfigurationError
from .constraints import Constraint
from .problem import CSP

__all__ = ["ac3", "PropagationResult"]


class PropagationResult:
    """Outcome of an AC-3 run: pruned domains and a consistency verdict."""

    def __init__(self, domains: Dict[str, tuple], consistent: bool,
                 revisions: int):
        self.domains = domains
        self.consistent = consistent
        self.revisions = revisions

    def domain_of(self, name: str) -> tuple:
        """Pruned domain of a variable."""
        if name not in self.domains:
            raise ConfigurationError(f"unknown variable {name!r}")
        return self.domains[name]

    @property
    def total_values(self) -> int:
        """Sum of remaining domain sizes (search-space measure)."""
        return sum(len(d) for d in self.domains.values())


def _binary_constraints(csp: CSP) -> list[Constraint]:
    return [c for c in csp.constraints if len(c.scope) == 2]


def _revise(csp: CSP, domains: Dict[str, list], constraint: Constraint,
            x: str, y: str) -> bool:
    """Remove values of ``x`` with no support in ``y``; True if changed."""
    revised = False
    keep = []
    for vx in domains[x]:
        supported = False
        for vy in domains[y]:
            if constraint.satisfied({x: vx, y: vy}):
                supported = True
                break
        if supported:
            keep.append(vx)
        else:
            revised = True
    if revised:
        domains[x] = keep
    return revised


def ac3(csp: CSP) -> PropagationResult:
    """Enforce arc consistency over every binary constraint.

    Unary constraints are applied first (they are just domain filters).
    Constraints of arity ≥ 3 are left to search; AC-3 only prunes, so the
    result is sound for any constraint mix.  ``consistent=False`` means
    the CSP is provably unsatisfiable (some domain wiped out).
    """
    domains: Dict[str, list] = {
        v.name: list(v.domain) for v in csp.variables
    }
    # unary filtering
    for constraint in csp.constraints:
        if len(constraint.scope) == 1:
            (name,) = constraint.scope
            domains[name] = [
                v for v in domains[name] if constraint.satisfied({name: v})
            ]
            if not domains[name]:
                return PropagationResult(
                    {k: tuple(v) for k, v in domains.items()},
                    consistent=False, revisions=0,
                )

    binaries = _binary_constraints(csp)
    # arcs: both directions of every binary constraint
    queue: deque[Tuple[str, str, Constraint]] = deque()
    for c in binaries:
        x, y = c.scope
        queue.append((x, y, c))
        queue.append((y, x, c))

    revisions = 0
    while queue:
        x, y, constraint = queue.popleft()
        if _revise(csp, domains, constraint, x, y):
            revisions += 1
            if not domains[x]:
                return PropagationResult(
                    {k: tuple(v) for k, v in domains.items()},
                    consistent=False, revisions=revisions,
                )
            # re-enqueue arcs pointing at x (other binary constraints)
            for c2 in binaries:
                a, b = c2.scope
                if b == x and a != y:
                    queue.append((a, x, c2))
                if a == x and b != y:
                    queue.append((b, x, c2))
    return PropagationResult(
        {k: tuple(v) for k, v in domains.items()},
        consistent=True, revisions=revisions,
    )
