"""Constraint-satisfaction substrate for the resilience model (paper §4.2).

Exports the bit-string configuration space, finite-domain CSPs, solvers,
local repair, and the dynamic (shock-driven) CSP simulator.
"""

from .bitengine import (
    BitEngineUnsupported,
    CompiledBitCSP,
    compile_csp,
)
from .bitstring import BitSpace, BitString
from .constraints import (
    AllDifferentConstraint,
    Assignment,
    CardinalityConstraint,
    Constraint,
    LinearConstraint,
    PredicateConstraint,
    TableConstraint,
    all_components_good,
    at_least_k_good,
)
from .dynamic import (
    DCSPRun,
    DCSPSimulator,
    DynamicCSP,
    EnvironmentShift,
    Perturbation,
    StateDamage,
)
from .engine import (
    BitCSPEngine,
    CSPEngine,
    ObjectCSPEngine,
    TiledCSPEngine,
    make_csp_engine,
)
from .generators import random_binary_csp, random_clause_csp
from .problem import CSP, boolean_csp
from .propagation import PropagationResult, ac3
from .soft import SoftCSP, WeightedConstraint
from .tiledengine import (
    TiledBitCSP,
    compile_tiled,
    derive_block_bits,
)
from .solvers import (
    RepairResult,
    backtracking_solve,
    greedy_bitflip_repair,
    min_conflicts,
)
from .variables import Variable, boolean_variable, boolean_variables

__all__ = [
    "BitEngineUnsupported",
    "CompiledBitCSP",
    "compile_csp",
    "BitCSPEngine",
    "CSPEngine",
    "ObjectCSPEngine",
    "TiledCSPEngine",
    "TiledBitCSP",
    "compile_tiled",
    "derive_block_bits",
    "make_csp_engine",
    "BitSpace",
    "BitString",
    "AllDifferentConstraint",
    "Assignment",
    "CardinalityConstraint",
    "Constraint",
    "LinearConstraint",
    "PredicateConstraint",
    "TableConstraint",
    "all_components_good",
    "at_least_k_good",
    "DCSPRun",
    "DCSPSimulator",
    "DynamicCSP",
    "EnvironmentShift",
    "Perturbation",
    "StateDamage",
    "CSP",
    "boolean_csp",
    "random_binary_csp",
    "random_clause_csp",
    "PropagationResult",
    "ac3",
    "SoftCSP",
    "WeightedConstraint",
    "RepairResult",
    "backtracking_solve",
    "greedy_bitflip_repair",
    "min_conflicts",
    "Variable",
    "boolean_variable",
    "boolean_variables",
]
