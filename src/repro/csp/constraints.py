"""Constraint types over finite-domain variables.

A constraint is the paper's "cost function over the set of all
configurations ... represented as a subset C of all fit configurations"
(§4.2), factored into named, scoped pieces so that partial satisfaction
can be measured: the fraction of satisfied constraints is the quality
signal Q(t) used by the Bruneau resilience metric.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "Assignment",
    "Constraint",
    "PredicateConstraint",
    "TableConstraint",
    "LinearConstraint",
    "AllDifferentConstraint",
    "CardinalityConstraint",
    "all_components_good",
    "at_least_k_good",
]

Assignment = Mapping[str, object]

_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Constraint(ABC):
    """A named predicate over a scope of variable names."""

    def __init__(self, scope: Sequence[str], name: str | None = None):
        if not scope:
            raise ConfigurationError("constraint scope must be non-empty")
        if len(set(scope)) != len(scope):
            raise ConfigurationError(f"constraint scope has duplicates: {scope}")
        self.scope: Tuple[str, ...] = tuple(scope)
        self.name = name or type(self).__name__

    @abstractmethod
    def satisfied(self, assignment: Assignment) -> bool:
        """Whether ``assignment`` (a full or scope-covering map) satisfies this."""

    def applicable(self, assignment: Assignment) -> bool:
        """Whether every scope variable is bound in ``assignment``."""
        return all(v in assignment for v in self.scope)

    def violated(self, assignment: Assignment) -> bool:
        """Convenience negation of :meth:`satisfied`."""
        return not self.satisfied(assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name} over {self.scope}>"


class PredicateConstraint(Constraint):
    """Wrap an arbitrary predicate ``f(*values) -> bool`` over the scope."""

    def __init__(
        self,
        scope: Sequence[str],
        predicate: Callable[..., bool],
        name: str | None = None,
    ):
        super().__init__(scope, name or getattr(predicate, "__name__", None))
        self._predicate = predicate

    def satisfied(self, assignment: Assignment) -> bool:
        return bool(self._predicate(*(assignment[v] for v in self.scope)))


class TableConstraint(Constraint):
    """Allow exactly an explicit set of value tuples over the scope.

    This is the most direct encoding of the paper's "subset C of all fit
    configurations".
    """

    def __init__(
        self,
        scope: Sequence[str],
        allowed: Iterable[tuple],
        name: str | None = None,
    ):
        super().__init__(scope, name)
        self.allowed = frozenset(tuple(row) for row in allowed)
        for row in self.allowed:
            if len(row) != len(self.scope):
                raise ConfigurationError(
                    f"table row {row} does not match scope arity {len(self.scope)}"
                )

    def satisfied(self, assignment: Assignment) -> bool:
        return tuple(assignment[v] for v in self.scope) in self.allowed


class LinearConstraint(Constraint):
    """``sum(weight_i * x_i) <op> bound`` over numeric-valued variables."""

    def __init__(
        self,
        scope: Sequence[str],
        weights: Sequence[float],
        op: str,
        bound: float,
        name: str | None = None,
    ):
        super().__init__(scope, name)
        if len(weights) != len(scope):
            raise ConfigurationError(
                f"{len(weights)} weights for a scope of {len(scope)} variables"
            )
        if op not in _COMPARATORS:
            raise ConfigurationError(
                f"unknown comparator {op!r}; expected one of {sorted(_COMPARATORS)}"
            )
        self.weights = tuple(float(w) for w in weights)
        self.op = op
        self.bound = float(bound)

    def satisfied(self, assignment: Assignment) -> bool:
        total = sum(
            w * float(assignment[v]) for w, v in zip(self.weights, self.scope)
        )
        return _COMPARATORS[self.op](total, self.bound)


class AllDifferentConstraint(Constraint):
    """Every scope variable takes a distinct value."""

    def satisfied(self, assignment: Assignment) -> bool:
        values = [assignment[v] for v in self.scope]
        return len(set(values)) == len(values)


class CardinalityConstraint(Constraint):
    """Between ``lo`` and ``hi`` (inclusive) scope variables equal ``value``."""

    def __init__(
        self,
        scope: Sequence[str],
        value: object,
        lo: int,
        hi: int | None = None,
        name: str | None = None,
    ):
        super().__init__(scope, name)
        hi = len(self.scope) if hi is None else hi
        if not 0 <= lo <= hi:
            raise ConfigurationError(f"invalid cardinality bounds [{lo}, {hi}]")
        self.value = value
        self.lo = lo
        self.hi = hi

    def satisfied(self, assignment: Assignment) -> bool:
        count = sum(1 for v in self.scope if assignment[v] == self.value)
        return self.lo <= count <= self.hi


def all_components_good(names: Sequence[str]) -> CardinalityConstraint:
    """The paper's spacecraft constraint C = 1^n: every component good."""
    return CardinalityConstraint(
        names, value=1, lo=len(names), name="all_components_good"
    )


def at_least_k_good(names: Sequence[str], k: int) -> CardinalityConstraint:
    """A degraded-mode constraint: at least ``k`` components available."""
    return CardinalityConstraint(names, value=1, lo=k, name=f"at_least_{k}_good")
