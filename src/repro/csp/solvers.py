"""Solvers and repair procedures for constraint problems.

Two families matter for the resilience model:

* **Constructive solving** (:func:`backtracking_solve`) finds a fit
  configuration from scratch — used to initialise systems and to decide
  satisfiability of a new environment C'.
* **Local repair** (:func:`min_conflicts`, :func:`greedy_bitflip_repair`)
  moves an *unfit* configuration back into the fit set one variable at a
  time — exactly the paper's recovery process ("the system flips one bit
  at a time", §4.2).  Repair functions return full trajectories so the
  caller can score recovery time and build Q(t) traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .constraints import Assignment
from .problem import CSP

__all__ = [
    "backtracking_solve",
    "min_conflicts",
    "greedy_bitflip_repair",
    "RepairResult",
]


def backtracking_solve(
    csp: CSP,
    seed: SeedLike = None,
    max_nodes: int = 1_000_000,
) -> Optional[Dict[str, object]]:
    """Find a fit assignment, or ``None`` when the fit set C is empty.

    Chronological backtracking with minimum-remaining-values variable
    ordering and forward checking.  ``max_nodes`` caps the search so a
    pathological instance degrades to "unknown" (raises
    :class:`ConfigurationError`) instead of hanging a simulation.
    """
    rng = make_rng(seed)
    names = list(csp.names)
    domains: Dict[str, list] = {n: list(csp.by_name[n].domain) for n in names}
    for dom in domains.values():
        rng.shuffle(dom)
    assignment: Dict[str, object] = {}
    nodes = 0

    def consistent(name: str) -> bool:
        for c in csp.constraints_of(name):
            if c.applicable(assignment) and not c.satisfied(assignment):
                return False
        return True

    def prune(name: str) -> Optional[Dict[str, list]]:
        """Forward-check: filter neighbour domains, None on wipe-out."""
        removed: Dict[str, list] = {}
        for c in csp.constraints_of(name):
            unbound = [v for v in c.scope if v not in assignment]
            if len(unbound) != 1:
                continue
            other = unbound[0]
            keep = []
            for value in domains[other]:
                assignment[other] = value
                ok = c.satisfied(assignment)
                del assignment[other]
                if ok:
                    keep.append(value)
                else:
                    removed.setdefault(other, []).append(value)
            if not keep:
                # restore before reporting wipe-out
                for var, vals in removed.items():
                    domains[var].extend(vals)
                return None
            domains[other] = keep
        return removed

    def restore(removed: Dict[str, list]) -> None:
        for var, vals in removed.items():
            domains[var].extend(vals)

    def select_variable() -> Optional[str]:
        unbound = [n for n in names if n not in assignment]
        if not unbound:
            return None
        return min(unbound, key=lambda n: (len(domains[n]), n))

    def search() -> bool:
        nonlocal nodes
        name = select_variable()
        if name is None:
            return True
        for value in list(domains[name]):
            nodes += 1
            if nodes > max_nodes:
                raise ConfigurationError(
                    f"backtracking search exceeded {max_nodes} nodes"
                )
            assignment[name] = value
            if consistent(name):
                removed = prune(name)
                if removed is not None:
                    if search():
                        return True
                    restore(removed)
            del assignment[name]
        return False

    if search():
        return dict(assignment)
    return None


@dataclass
class RepairResult:
    """Outcome of a local-repair run.

    ``trajectory`` includes the starting assignment and every intermediate
    configuration; ``steps`` counts variable changes (= bit flips for
    boolean CSPs), which is the recovery-time currency of
    k-recoverability.
    """

    success: bool
    steps: int
    final: Dict[str, object]
    trajectory: list[Dict[str, object]] = field(default_factory=list)
    conflicts: list[int] = field(default_factory=list)

    @property
    def recovered_within(self) -> Optional[int]:
        """Steps used if repair succeeded, else ``None``."""
        return self.steps if self.success else None


def min_conflicts(
    csp: CSP,
    start: Assignment,
    max_steps: int = 10_000,
    seed: SeedLike = None,
) -> RepairResult:
    """Min-conflicts local search from ``start``.

    At each step pick a random conflicted variable and move it to the
    value minimising the number of violated constraints (ties broken at
    random).  Classic DCSP repair: it reuses the damaged configuration
    instead of re-solving from scratch, which is why it models recovery
    rather than redesign.
    """
    rng = make_rng(seed)
    assignment = dict(start)
    csp.validate_assignment(assignment)
    if not csp.is_complete(assignment):
        raise ConfigurationError("min_conflicts requires a complete assignment")
    trajectory = [dict(assignment)]
    conflicts = [csp.conflict_count(assignment)]
    steps = 0
    while conflicts[-1] > 0 and steps < max_steps:
        conflicted_vars = sorted(
            {v for c in csp.violated_constraints(assignment) for v in c.scope}
        )
        name = conflicted_vars[rng.integers(len(conflicted_vars))]
        best_values: list[object] = []
        best_count: Optional[int] = None
        for value in csp.by_name[name].domain:
            candidate = dict(assignment)
            candidate[name] = value
            count = csp.conflict_count(candidate)
            if best_count is None or count < best_count:
                best_count, best_values = count, [value]
            elif count == best_count:
                best_values.append(value)
        new_value = best_values[rng.integers(len(best_values))]
        if new_value != assignment[name]:
            assignment[name] = new_value
            steps += 1
            trajectory.append(dict(assignment))
            conflicts.append(csp.conflict_count(assignment))
        else:
            # Stuck on a plateau: random restart of this variable.
            domain = csp.by_name[name].domain
            assignment[name] = domain[rng.integers(len(domain))]
            steps += 1
            trajectory.append(dict(assignment))
            conflicts.append(csp.conflict_count(assignment))
    return RepairResult(
        success=conflicts[-1] == 0,
        steps=steps,
        final=dict(assignment),
        trajectory=trajectory,
        conflicts=conflicts,
    )


def greedy_bitflip_repair(
    csp: CSP,
    start: Assignment,
    max_flips: int = 1_000,
    flips_per_step: int = 1,
    seed: SeedLike = None,
) -> RepairResult:
    """Greedy one-bit-at-a-time repair for boolean CSPs.

    Each step flips up to ``flips_per_step`` bits, each chosen greedily to
    maximally reduce the number of violated constraints (random among
    ties; a random sideways flip of a conflicted variable when no flip
    improves).  ``flips_per_step`` is the paper's adaptability dial: "we
    quantify the speed of an adaptation by the number of bits an agent can
    flip at a time" (§4.4).

    ``steps`` in the result counts *rounds*, so a system with higher
    adaptability genuinely recovers in fewer steps.
    """
    if flips_per_step < 1:
        raise ConfigurationError(f"flips_per_step must be >= 1, got {flips_per_step}")
    rng = make_rng(seed)
    assignment = dict(start)
    csp.validate_assignment(assignment)
    if not csp.is_complete(assignment):
        raise ConfigurationError("repair requires a complete assignment")
    for v in csp.variables:
        if not v.is_boolean:
            raise ConfigurationError(
                f"greedy_bitflip_repair needs boolean variables; {v.name!r} is not"
            )
    trajectory = [dict(assignment)]
    conflicts = [csp.conflict_count(assignment)]
    rounds = 0
    flips_done = 0
    while conflicts[-1] > 0 and flips_done < max_flips:
        for _ in range(flips_per_step):
            if csp.conflict_count(assignment) == 0 or flips_done >= max_flips:
                break
            best_names: list[str] = []
            best_count: Optional[int] = None
            for name in csp.names:
                candidate = dict(assignment)
                candidate[name] = 1 - int(assignment[name])  # type: ignore[arg-type]
                count = csp.conflict_count(candidate)
                if best_count is None or count < best_count:
                    best_count, best_names = count, [name]
                elif count == best_count:
                    best_names.append(name)
            current = csp.conflict_count(assignment)
            if best_count is not None and best_count < current:
                name = best_names[rng.integers(len(best_names))]
            else:
                conflicted = sorted(
                    {v for c in csp.violated_constraints(assignment) for v in c.scope}
                )
                name = conflicted[rng.integers(len(conflicted))]
            assignment[name] = 1 - int(assignment[name])  # type: ignore[arg-type]
            flips_done += 1
        rounds += 1
        trajectory.append(dict(assignment))
        conflicts.append(csp.conflict_count(assignment))
    return RepairResult(
        success=conflicts[-1] == 0,
        steps=rounds,
        final=dict(assignment),
        trajectory=trajectory,
        conflicts=conflicts,
    )
