"""Solvers and repair procedures for constraint problems.

Two families matter for the resilience model:

* **Constructive solving** (:func:`backtracking_solve`) finds a fit
  configuration from scratch — used to initialise systems and to decide
  satisfiability of a new environment C'.
* **Local repair** (:func:`min_conflicts`, :func:`greedy_bitflip_repair`)
  moves an *unfit* configuration back into the fit set one variable at a
  time — exactly the paper's recovery process ("the system flips one bit
  at a time", §4.2).  Repair functions return full trajectories so the
  caller can score recovery time and build Q(t) traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .constraints import Assignment
from .problem import CSP

__all__ = [
    "backtracking_solve",
    "min_conflicts",
    "greedy_bitflip_repair",
    "RepairResult",
]


def backtracking_solve(
    csp: CSP,
    seed: SeedLike = None,
    max_nodes: int = 1_000_000,
) -> Optional[Dict[str, object]]:
    """Find a fit assignment, or ``None`` when the fit set C is empty.

    Chronological backtracking with minimum-remaining-values variable
    ordering and forward checking.  ``max_nodes`` caps the search so a
    pathological instance degrades to "unknown" (raises
    :class:`ConfigurationError`) instead of hanging a simulation.
    """
    rng = make_rng(seed)
    names = list(csp.names)
    domains: Dict[str, list] = {n: list(csp.by_name[n].domain) for n in names}
    for dom in domains.values():
        rng.shuffle(dom)
    assignment: Dict[str, object] = {}
    nodes = 0

    def consistent(name: str) -> bool:
        for c in csp.constraints_of(name):
            if c.applicable(assignment) and not c.satisfied(assignment):
                return False
        return True

    def prune(name: str) -> Optional[Dict[str, list]]:
        """Forward-check: filter neighbour domains, None on wipe-out."""
        removed: Dict[str, list] = {}
        for c in csp.constraints_of(name):
            unbound = [v for v in c.scope if v not in assignment]
            if len(unbound) != 1:
                continue
            other = unbound[0]
            keep = []
            for value in domains[other]:
                assignment[other] = value
                ok = c.satisfied(assignment)
                del assignment[other]
                if ok:
                    keep.append(value)
                else:
                    removed.setdefault(other, []).append(value)
            if not keep:
                # restore before reporting wipe-out
                for var, vals in removed.items():
                    domains[var].extend(vals)
                return None
            domains[other] = keep
        return removed

    def restore(removed: Dict[str, list]) -> None:
        for var, vals in removed.items():
            domains[var].extend(vals)

    def select_variable() -> Optional[str]:
        unbound = [n for n in names if n not in assignment]
        if not unbound:
            return None
        return min(unbound, key=lambda n: (len(domains[n]), n))

    def search() -> bool:
        nonlocal nodes
        name = select_variable()
        if name is None:
            return True
        for value in list(domains[name]):
            nodes += 1
            if nodes > max_nodes:
                raise ConfigurationError(
                    f"backtracking search exceeded {max_nodes} nodes"
                )
            assignment[name] = value
            if consistent(name):
                removed = prune(name)
                if removed is not None:
                    if search():
                        return True
                    restore(removed)
            del assignment[name]
        return False

    if search():
        return dict(assignment)
    return None


@dataclass
class RepairResult:
    """Outcome of a local-repair run.

    ``trajectory`` includes the starting assignment and every intermediate
    configuration; ``steps`` counts variable changes (= bit flips for
    boolean CSPs), which is the recovery-time currency of
    k-recoverability.
    """

    success: bool
    steps: int
    final: Dict[str, object]
    trajectory: list[Dict[str, object]] = field(default_factory=list)
    conflicts: list[int] = field(default_factory=list)

    @property
    def recovered_within(self) -> Optional[int]:
        """Steps used if repair succeeded, else ``None``."""
        return self.steps if self.success else None


def min_conflicts(
    csp: CSP,
    start: Assignment,
    max_steps: int = 10_000,
    seed: SeedLike = None,
    engine=None,
) -> RepairResult:
    """Min-conflicts local search from ``start``.

    At each step pick a random conflicted variable and move it to the
    value minimising the number of violated constraints (ties broken at
    random).  Classic DCSP repair: it reuses the damaged configuration
    instead of re-solving from scratch, which is why it models recovery
    rather than redesign.

    ``engine`` selects the CSP kernels (default honours
    ``REPRO_CSP_ENGINE``); the bit engine replays the identical search
    on a compiled violation table, draw-for-draw, falling back to the
    object loop for non-boolean or too-large CSPs.
    """
    from ..runtime import trace
    from .engine import make_csp_engine

    rng = make_rng(seed)
    assignment = dict(start)
    csp.validate_assignment(assignment)
    if not csp.is_complete(assignment):
        raise ConfigurationError("min_conflicts requires a complete assignment")
    tr = trace.current()
    compiled = make_csp_engine(engine).try_compile(csp)
    if compiled is not None:
        with tr.timer("csp.repair.bit"):
            result = _min_conflicts_bits(
                compiled, csp, assignment, max_steps, rng
            )
        tr.count("csp.repair.runs.bit")
        return result
    with tr.timer("csp.repair.object"):
        result = _min_conflicts_object(csp, assignment, max_steps, rng)
    tr.count("csp.repair.runs.object")
    return result


def _min_conflicts_object(
    csp: CSP, assignment: Dict[str, object], max_steps: int, rng
) -> RepairResult:
    trajectory = [dict(assignment)]
    conflicts = [csp.conflict_count(assignment)]
    steps = 0
    while conflicts[-1] > 0 and steps < max_steps:
        conflicted_vars = sorted(
            {v for c in csp.violated_constraints(assignment) for v in c.scope}
        )
        name = conflicted_vars[rng.integers(len(conflicted_vars))]
        best_values: list[object] = []
        best_count: Optional[int] = None
        for value in csp.by_name[name].domain:
            candidate = dict(assignment)
            candidate[name] = value
            count = csp.conflict_count(candidate)
            if best_count is None or count < best_count:
                best_count, best_values = count, [value]
            elif count == best_count:
                best_values.append(value)
        new_value = best_values[rng.integers(len(best_values))]
        if new_value != assignment[name]:
            assignment[name] = new_value
            steps += 1
            trajectory.append(dict(assignment))
            conflicts.append(csp.conflict_count(assignment))
        else:
            # Stuck on a plateau: random restart of this variable.
            domain = csp.by_name[name].domain
            assignment[name] = domain[rng.integers(len(domain))]
            steps += 1
            trajectory.append(dict(assignment))
            conflicts.append(csp.conflict_count(assignment))
    return RepairResult(
        success=conflicts[-1] == 0,
        steps=steps,
        final=dict(assignment),
        trajectory=trajectory,
        conflicts=conflicts,
    )


def _min_conflicts_bits(
    compiled, csp: CSP, assignment: Dict[str, object], max_steps: int, rng
) -> RepairResult:
    """Min-conflicts on the compiled violation table.

    Replicates the object loop draw-for-draw: conflicted variables in
    lexicographic name order, candidate values in domain order, the
    plateau branch's full-domain redraw — only the conflict counting is
    a table lookup instead of a constraint sweep.
    """
    mask = compiled.mask_of(assignment)
    trajectory = [dict(assignment)]
    conflicts = [int(compiled.violations[mask])]
    steps = 0
    while conflicts[-1] > 0 and steps < max_steps:
        conflicted = compiled.conflicted_variable_order(mask)
        i = conflicted[int(rng.integers(len(conflicted)))]
        domain = csp.variables[i].domain
        bit = 1 << i
        best_bits: list[int] = []
        best_count: Optional[int] = None
        for value in domain:
            b = int(value)
            cand = (mask & ~bit) | (b << i)
            count = int(compiled.violations[cand])
            if best_count is None or count < best_count:
                best_count, best_bits = count, [b]
            elif count == best_count:
                best_bits.append(b)
        new_bit = best_bits[int(rng.integers(len(best_bits)))]
        if new_bit != (mask >> i) & 1:
            mask = (mask & ~bit) | (new_bit << i)
        else:
            # Stuck on a plateau: random restart of this variable.
            b = int(domain[int(rng.integers(len(domain)))])
            mask = (mask & ~bit) | (b << i)
        steps += 1
        trajectory.append(compiled.assignment_of(mask))
        conflicts.append(int(compiled.violations[mask]))
    return RepairResult(
        success=conflicts[-1] == 0,
        steps=steps,
        final=compiled.assignment_of(mask),
        trajectory=trajectory,
        conflicts=conflicts,
    )


def greedy_bitflip_repair(
    csp: CSP,
    start: Assignment,
    max_flips: int = 1_000,
    flips_per_step: int = 1,
    seed: SeedLike = None,
    engine=None,
) -> RepairResult:
    """Greedy one-bit-at-a-time repair for boolean CSPs.

    Each step flips up to ``flips_per_step`` bits, each chosen greedily to
    maximally reduce the number of violated constraints (random among
    ties; a random sideways flip of a conflicted variable when no flip
    improves).  ``flips_per_step`` is the paper's adaptability dial: "we
    quantify the speed of an adaptation by the number of bits an agent can
    flip at a time" (§4.4).

    ``steps`` in the result counts *rounds*, so a system with higher
    adaptability genuinely recovers in fewer steps.

    ``engine`` selects the CSP kernels (default honours
    ``REPRO_CSP_ENGINE``); the bit engine replays the identical repair
    on a compiled violation table, draw-for-draw, falling back to the
    object loop when the CSP exceeds the compiled-form envelope.
    """
    from ..runtime import trace
    from .engine import make_csp_engine

    if flips_per_step < 1:
        raise ConfigurationError(f"flips_per_step must be >= 1, got {flips_per_step}")
    rng = make_rng(seed)
    assignment = dict(start)
    csp.validate_assignment(assignment)
    if not csp.is_complete(assignment):
        raise ConfigurationError("repair requires a complete assignment")
    for v in csp.variables:
        if not v.is_boolean:
            raise ConfigurationError(
                f"greedy_bitflip_repair needs boolean variables; {v.name!r} is not"
            )
    tr = trace.current()
    compiled = make_csp_engine(engine).try_compile(csp)
    if compiled is not None:
        with tr.timer("csp.repair.bit"):
            result = _greedy_bitflip_bits(
                compiled, assignment, max_flips, flips_per_step, rng
            )
        tr.count("csp.repair.runs.bit")
        return result
    with tr.timer("csp.repair.object"):
        result = _greedy_bitflip_object(
            csp, assignment, max_flips, flips_per_step, rng
        )
    tr.count("csp.repair.runs.object")
    return result


def _greedy_bitflip_object(
    csp: CSP,
    assignment: Dict[str, object],
    max_flips: int,
    flips_per_step: int,
    rng,
) -> RepairResult:
    trajectory = [dict(assignment)]
    conflicts = [csp.conflict_count(assignment)]
    rounds = 0
    flips_done = 0
    while conflicts[-1] > 0 and flips_done < max_flips:
        for _ in range(flips_per_step):
            if csp.conflict_count(assignment) == 0 or flips_done >= max_flips:
                break
            best_names: list[str] = []
            best_count: Optional[int] = None
            for name in csp.names:
                candidate = dict(assignment)
                candidate[name] = 1 - int(assignment[name])  # type: ignore[arg-type]
                count = csp.conflict_count(candidate)
                if best_count is None or count < best_count:
                    best_count, best_names = count, [name]
                elif count == best_count:
                    best_names.append(name)
            current = csp.conflict_count(assignment)
            if best_count is not None and best_count < current:
                name = best_names[rng.integers(len(best_names))]
            else:
                conflicted = sorted(
                    {v for c in csp.violated_constraints(assignment) for v in c.scope}
                )
                name = conflicted[rng.integers(len(conflicted))]
            assignment[name] = 1 - int(assignment[name])  # type: ignore[arg-type]
            flips_done += 1
        rounds += 1
        trajectory.append(dict(assignment))
        conflicts.append(csp.conflict_count(assignment))
    return RepairResult(
        success=conflicts[-1] == 0,
        steps=rounds,
        final=dict(assignment),
        trajectory=trajectory,
        conflicts=conflicts,
    )


def _greedy_bitflip_bits(
    compiled,
    assignment: Dict[str, object],
    max_flips: int,
    flips_per_step: int,
    rng,
) -> RepairResult:
    """Greedy bit-flip repair on the compiled violation table.

    Draw-for-draw with the object loop: all candidate flips scored in
    one gather (declaration order), ties collected exactly like the
    running arg-min list, sideways moves over name-sorted conflicted
    variables.
    """
    mask = compiled.mask_of(assignment)
    trajectory = [dict(assignment)]
    conflicts = [int(compiled.violations[mask])]
    rounds = 0
    flips_done = 0
    while conflicts[-1] > 0 and flips_done < max_flips:
        for _ in range(flips_per_step):
            current = int(compiled.violations[mask])
            if current == 0 or flips_done >= max_flips:
                break
            counts = compiled.violations[mask ^ compiled.flip_masks]
            best = int(counts.min())
            if best < current:
                best_idx = np.nonzero(counts == best)[0]
                i = int(best_idx[int(rng.integers(len(best_idx)))])
            else:
                conflicted = compiled.conflicted_variable_order(mask)
                i = conflicted[int(rng.integers(len(conflicted)))]
            mask ^= 1 << i
            flips_done += 1
        rounds += 1
        trajectory.append(compiled.assignment_of(mask))
        conflicts.append(int(compiled.violations[mask]))
    return RepairResult(
        success=conflicts[-1] == 0,
        steps=rounds,
        final=compiled.assignment_of(mask),
        trajectory=trajectory,
        conflicts=conflicts,
    )
