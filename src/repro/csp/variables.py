"""Finite-domain variables for constraint satisfaction problems.

The paper's model uses boolean variables ("a single binary variable n_i
representing the availability of the component"), but the general DCSP
framework it builds on [9],[28] is finite-domain; we support both so the
same solver stack serves the spacecraft example and richer substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Tuple

from ..errors import ConfigurationError

__all__ = ["Variable", "boolean_variable", "boolean_variables"]

Value = Hashable


@dataclass(frozen=True)
class Variable:
    """A named variable with a finite, ordered domain of hashable values."""

    name: str
    domain: Tuple[Value, ...] = field(default=(0, 1))

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("variable name must be non-empty")
        if not isinstance(self.domain, tuple):
            object.__setattr__(self, "domain", tuple(self.domain))
        if len(self.domain) == 0:
            raise ConfigurationError(f"variable {self.name!r} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise ConfigurationError(
                f"variable {self.name!r} has duplicate domain values"
            )

    @property
    def is_boolean(self) -> bool:
        """True when the domain is exactly {0, 1}."""
        return set(self.domain) == {0, 1}

    def contains(self, value: Value) -> bool:
        """Whether ``value`` is in this variable's domain."""
        return value in self.domain


def boolean_variable(name: str) -> Variable:
    """Shorthand for a 0/1 availability variable."""
    return Variable(name=name, domain=(0, 1))


def boolean_variables(n: int, prefix: str = "x") -> tuple[Variable, ...]:
    """Make ``n`` boolean variables named ``prefix0 .. prefix{n-1}``.

    These model the paper's n-component systems whose status is a length-n
    bit string.
    """
    if n < 0:
        raise ConfigurationError(f"cannot create {n} variables")
    return tuple(boolean_variable(f"{prefix}{i}") for i in range(n))
