"""Compiled bit-matrix form of a boolean CSP (the array CSP engine).

The paper's formal model (§4.2, Fig. 4) puts the whole resilience
machinery on one substrate: a system status is a length-``n`` bit
string, the environment is a constraint set C, and resilience questions
(k-recoverability, K-maintainability, Q(t)) are all functions of the fit
set C ⊆ {0,1}^n.  The object engine answers them by enumerating
``dict``-per-assignment states and re-dispatching every constraint per
query.  This module compiles a boolean :class:`~repro.csp.problem.CSP`
*once* into array form:

* the full state space as the packed-integer range ``0 .. 2^n - 1``
  (state ``m`` has bit ``i`` set iff variable ``i`` is 1);
* each constraint lowered to a vectorized evaluator — cardinality
  constraints via one popcount over a scope mask, linear constraints via
  ordered float accumulation (matching Python's left-to-right ``sum``
  bit-for-bit), table/predicate constraints via a precomputed support
  array over the scope's 2^m subcube broadcast to the full space;
* a ``(n_constraints, 2^n)`` satisfaction matrix, per-state violation
  counts, the fit mask, and a vectorized ``quality()``.

On top of the compiled form live the resilience kernels: a
level-synchronous Hamming-ball BFS over the hypercube with XOR neighbor
indexing (:func:`hamming_distances` — distance to the nearest fit
state, exactly :meth:`BitSpace.recovery_distance` for every state at
once), the Baral–Eiter repair-level map for the spacecraft encoding
(:func:`add_bit_levels`), and the debris damage envelope
(:func:`clear_bit_ball`).

Memory envelope: everything is Θ(2^n · n_constraints), so compilation
is gated at ``max_bits`` (default 20, ~1M states) and raises
:class:`BitEngineUnsupported` beyond it — callers fall back to the
tiled engine (:mod:`repro.csp.tiledengine`, which streams the same
lowered kernels over fixed-size blocks instead of materializing 2^n
rows) or the object engine (see :mod:`repro.csp.engine`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..runtime import trace
from .bitstring import BitString
from .constraints import (
    CardinalityConstraint,
    Constraint,
    LinearConstraint,
    TableConstraint,
    _COMPARATORS,
)
from .problem import CSP

__all__ = [
    "DEFAULT_MAX_BITS",
    "BitEngineUnsupported",
    "CompiledBitCSP",
    "PackedStateBridge",
    "compile_csp",
    "estimate_compile_bytes",
    "measured_compile_bytes",
    "lower_constraint",
    "lower_csp",
    "hamming_distances",
    "add_bit_levels",
    "clear_bit_ball",
]

#: Largest variable count the compiler accepts: the compiled form is
#: Θ(2^n · n_constraints) memory, so 20 bits ≈ 1M states keeps a
#: handful of constraints within a few tens of MB.
DEFAULT_MAX_BITS = 20

_NP_COMPARATORS = {
    "<=": np.less_equal,
    ">=": np.greater_equal,
    "<": np.less,
    ">": np.greater,
    "==": np.equal,
    "!=": np.not_equal,
}
assert set(_NP_COMPARATORS) == set(_COMPARATORS)


class BitEngineUnsupported(ConfigurationError):
    """The CSP cannot be compiled to bit-matrix form.

    Raised for non-boolean variables and for state spaces beyond the
    2^``max_bits`` memory envelope.  The engine seam catches this and
    falls back to the object engine.
    """


def _subcube_index(scope_idx: np.ndarray, states: np.ndarray) -> np.ndarray:
    """Index of each state within the scope's 2^m subcube."""
    sub = np.zeros(states.shape, dtype=np.int64)
    for j, i in enumerate(scope_idx):
        sub |= ((states >> np.int64(i)) & 1) << np.int64(j)
    return sub


def _bit_domain_bridge(csp: CSP) -> list[tuple]:
    """Per variable, the actual domain objects whose ``int()`` is 0 and 1.

    0/1 may be stored as bools (or other int-like objects) in the
    domain; predicates must see the originals, not raw bits.
    """
    out: list[tuple] = []
    for v in csp.variables:
        zero = next(x for x in v.domain if int(x) == 0)
        one = next(x for x in v.domain if int(x) == 1)
        out.append((zero, one))
    return out


def lower_constraint(
    c: Constraint, scope_idx: np.ndarray, val_for_bit: Sequence[tuple]
):
    """Pre-lower one constraint into a reusable block evaluator.

    Returns a callable mapping any array of packed state masks (any
    shape) to the constraint's satisfaction over those states.  All
    compile-time work — scope masks, table/predicate support over the
    scope's 2^m subcube — happens once here, so the evaluator can be
    applied to fixed-size state blocks without re-lowering.  This is
    the kernel-sharing seam between :class:`CompiledBitCSP` (one call
    over the full 2^n range) and the tiled engine
    (:mod:`repro.csp.tiledengine`, one call per streamed block).
    """
    if type(c) is CardinalityConstraint:
        # cardinality constraint → one popcount over the scope mask
        scope_mask = np.int64(0)
        for i in scope_idx:
            scope_mask |= np.int64(1) << np.int64(i)
        m, lo, hi, value = len(scope_idx), c.lo, c.hi, c.value

        def evaluate(states: np.ndarray) -> np.ndarray:
            ones = np.bitwise_count(states & scope_mask).astype(np.int64)
            if value == 1:  # covers True as well (True == 1)
                count = ones
            elif value == 0:
                count = m - ones
            else:  # no boolean value ever equals the required value
                count = np.zeros_like(ones)
            return (lo <= count) & (count <= hi)

        return evaluate

    if type(c) is LinearConstraint:
        # linear constraint → ordered float accumulation + comparator;
        # terms accumulate left-to-right exactly like the object
        # engine's ``sum(w * float(x) for ...)`` so float results are
        # bit-identical
        weights = tuple(c.weights)
        idx = tuple(int(i) for i in scope_idx)
        op, bound = _NP_COMPARATORS[c.op], c.bound

        def evaluate(states: np.ndarray) -> np.ndarray:
            total = np.zeros(states.shape, dtype=np.float64)
            for w, i in zip(weights, idx):
                bit = ((states >> np.int64(i)) & 1).astype(np.float64)
                total = total + w * bit
            return op(total, bound)

        return evaluate

    if type(c) is TableConstraint:
        # table constraint → support array over the scope subcube
        m = len(scope_idx)
        support = np.zeros(1 << m, dtype=bool)
        for row in c.allowed:
            # rows mentioning non-boolean values never match a bit state
            if all(v == 0 or v == 1 for v in row):
                sub = 0
                for j, v in enumerate(row):
                    sub |= int(v) << j
                support[sub] = True
    else:
        # any constraint → evaluate ``satisfied`` once per scope
        # subcube cell: 2^m predicate calls at lowering time (m = scope
        # arity), then one gather broadcasts the support to any block
        m = len(scope_idx)
        support = np.empty(1 << m, dtype=bool)
        scope_vals = [val_for_bit[i] for i in scope_idx]
        assignment: Dict[str, object] = {}
        for sub in range(1 << m):
            for j, name in enumerate(c.scope):
                assignment[name] = scope_vals[j][(sub >> j) & 1]
            support[sub] = bool(c.satisfied(assignment))

    def evaluate(states: np.ndarray) -> np.ndarray:
        return support[_subcube_index(scope_idx, states)]

    return evaluate


def lower_csp(csp: CSP):
    """Lower every constraint of a boolean CSP once.

    Returns ``(evaluators, scope_mat, val_for_bit)``: one block
    evaluator per constraint (see :func:`lower_constraint`), the
    ``(n_constraints, n)`` scope-membership matrix, and the bit→domain
    value bridge.  Raises :class:`BitEngineUnsupported` for non-boolean
    variables.  Shared by the full-space and tiled compiled forms.
    """
    for v in csp.variables:
        if not v.is_boolean:
            raise BitEngineUnsupported(
                f"variable {v.name!r} is not boolean; "
                "the bit engine only compiles boolean CSPs"
            )
    val_for_bit = _bit_domain_bridge(csp)
    names = csp.names
    var_index = {name: i for i, name in enumerate(names)}
    n, n_c = len(names), len(csp.constraints)
    scope_mat = np.zeros((n_c, n), dtype=bool)
    evaluators = []
    for ci, c in enumerate(csp.constraints):
        scope_idx = np.array(
            [var_index[name] for name in c.scope], dtype=np.int64
        )
        scope_mat[ci, scope_idx] = True
        evaluators.append(lower_constraint(c, scope_idx, val_for_bit))
    return evaluators, scope_mat, val_for_bit


class PackedStateBridge:
    """State ↔ assignment conversions shared by the compiled CSP forms.

    Implementors provide ``names`` and ``_val_for_bit``; state ``m``
    (an integer mask) assigns variable ``i`` the domain value whose
    ``int()`` is bit ``i`` of ``m`` — the convention of
    :meth:`CSP.bits_from_assignment`.
    """

    names: tuple
    _val_for_bit: list

    def assignment_of(self, mask: int) -> Dict[str, object]:
        """The assignment dict for state ``mask`` (original domain values)."""
        return {
            name: self._val_for_bit[i][(mask >> i) & 1]
            for i, name in enumerate(self.names)
        }

    def mask_of(self, assignment) -> int:
        """Pack a complete assignment into a state mask."""
        mask = 0
        for i, name in enumerate(self.names):
            if name not in assignment:
                raise ConfigurationError(
                    f"assignment misses variable {name!r}"
                )
            if int(assignment[name]) == 1:
                mask |= 1 << i
        return mask


class CompiledBitCSP(PackedStateBridge):
    """A boolean CSP compiled once into array form over all 2^n states.

    State ``m`` (an integer mask) assigns variable ``i`` the domain
    value whose ``int()`` is bit ``i`` of ``m`` — the same convention as
    :meth:`CSP.bits_from_assignment`.  All arrays are indexed by mask.
    """

    #: engine kind whose dispatch sites this compiled form serves —
    #: used to label ``csp.*`` timers/counters at the dispatch sites
    engine_label = "bit"

    def __init__(self, csp: CSP, max_bits: int = DEFAULT_MAX_BITS):
        n = len(csp.variables)
        if n > max_bits:
            raise BitEngineUnsupported(
                f"{n}-variable CSP exceeds the bit engine's "
                f"2^{max_bits}-state memory envelope"
            )
        evaluators, scope_mat, val_for_bit = lower_csp(csp)
        self.csp = csp
        self.n = n
        self.size = 1 << n
        self.names: tuple[str, ...] = csp.names
        #: every state as a packed-integer mask, 0 .. 2^n - 1
        self.states: np.ndarray = np.arange(self.size, dtype=np.int64)
        #: single-bit flip masks, ``flip_masks[i] = 1 << i``
        self.flip_masks: np.ndarray = (
            np.int64(1) << np.arange(n, dtype=np.int64)
        )
        self._val_for_bit: list[tuple] = val_for_bit
        #: variable indices in lexicographic-name order (conflicted-set
        #: ordering of the object repair loops)
        self.order_by_name: tuple[int, ...] = tuple(
            sorted(range(n), key=lambda i: self.names[i])
        )

        n_c = len(csp.constraints)
        #: (n_constraints, 2^n) satisfaction matrix
        self.sat: np.ndarray = np.empty((n_c, self.size), dtype=bool)
        #: (n_constraints, n) scope membership matrix
        self.scope_mat: np.ndarray = scope_mat
        for ci, evaluate in enumerate(evaluators):
            self.sat[ci] = evaluate(self.states)
        #: violated-constraint count per state (the object engine's
        #: ``conflict_count`` for every state at once)
        self.violations: np.ndarray = (
            (~self.sat).sum(axis=0).astype(np.int32)
            if n_c
            else np.zeros(self.size, dtype=np.int32)
        )
        #: fit mask: state satisfies every constraint
        self.fit_mask: np.ndarray = self.violations == 0
        self._quality: Optional[np.ndarray] = None
        self._dist_to_fit: Optional[np.ndarray] = None
        trace.current().count("csp.compiles")

    # -- whole-space views ------------------------------------------------

    @property
    def fit_indices(self) -> np.ndarray:
        """Masks of all fit states, ascending."""
        return np.nonzero(self.fit_mask)[0]

    def fit_bitstrings(self) -> frozenset[BitString]:
        """The fit set C, identical to :meth:`CSP.fit_bitstrings`."""
        return frozenset(
            BitString(self.n, int(m)) for m in self.fit_indices
        )

    def quality_table(self) -> np.ndarray:
        """Q for every state: percentage of satisfied constraints.

        Float operations replicate the object engine's
        ``100.0 * satisfied / n_constraints`` exactly.
        """
        if self._quality is None:
            n_c = len(self.csp.constraints)
            if n_c == 0:
                self._quality = np.full(self.size, 100.0)
            else:
                satisfied = (n_c - self.violations).astype(np.int64)
                self._quality = 100.0 * satisfied / n_c
        return self._quality

    def quality(self, masks) -> np.ndarray:
        """Vectorized :meth:`CSP.quality` for a batch of state masks."""
        return self.quality_table()[np.asarray(masks, dtype=np.int64)]

    def conflict_counts(self, masks) -> np.ndarray:
        """Vectorized :meth:`CSP.conflict_count` for a batch of masks."""
        return self.violations[np.asarray(masks, dtype=np.int64)]

    # -- recoverability kernel -------------------------------------------

    def distances_to_fit(self) -> np.ndarray:
        """Hamming distance from every state to the nearest fit state.

        ``-1`` everywhere when the fit set is empty.  Computed once by
        level-synchronous BFS and cached.
        """
        if self._dist_to_fit is None:
            self._dist_to_fit = hamming_distances(self.fit_mask, self.n)
        return self._dist_to_fit

    def min_distances(self, states: Sequence[BitString]) -> np.ndarray:
        """Drop-in for :meth:`PackedFitSet.min_distances` on the fit set."""
        states = list(states)
        if not len(self.fit_indices):
            return np.full(len(states), -1, dtype=np.int64)
        for s in states:
            if s.n != self.n:
                raise ConfigurationError(
                    f"state has {s.n} bits but fit set has {self.n}"
                )
        if not states:
            return np.zeros(0, dtype=np.int64)
        masks = np.fromiter(
            (s.mask for s in states), dtype=np.int64, count=len(states)
        )
        return self.distances_to_fit()[masks].astype(np.int64)

    def min_distances_masks(self, masks) -> np.ndarray:
        """Min Hamming distance into the fit set for packed state masks.

        Array-indexed flavour of :meth:`min_distances` (``-1`` when the
        fit set is empty); the tiled engine implements the same method
        with an implicit-frontier BFS, so callers like
        :func:`repro.core.recoverability.adaptation_bound` are
        engine-independent.
        """
        masks = np.asarray(masks, dtype=np.int64)
        return self.distances_to_fit()[masks].astype(np.int64)

    # -- state <-> assignment bridge: see PackedStateBridge ---------------

    def conflicted_variable_order(self, mask: int) -> list[int]:
        """Scope variables of violated constraints, sorted by name.

        Mirrors the object repair loops' ``sorted({v for c in violated
        for v in c.scope})`` (lexicographic on *names*, so e.g. ``x10``
        sorts before ``x2``) but returns variable indices.
        """
        violated = ~self.sat[:, mask]
        if not violated.any():
            return []
        in_conflict = self.scope_mat[violated].any(axis=0)
        return [i for i in self.order_by_name if in_conflict[i]]


def compile_csp(csp: CSP, max_bits: int = DEFAULT_MAX_BITS) -> CompiledBitCSP:
    """Compile ``csp`` to bit-matrix form, caching the result on the CSP.

    The cache is safe because :class:`CSP` is immutable after
    construction (variables and constraints are tuples).  Raises
    :class:`BitEngineUnsupported` for non-boolean CSPs and for
    ``n > max_bits`` regardless of any cached compilation.
    """
    n = len(csp.variables)
    if n > max_bits:
        raise BitEngineUnsupported(
            f"{n}-variable CSP exceeds the bit engine's "
            f"2^{max_bits}-state memory envelope"
        )
    cached = getattr(csp, "_bit_compiled", None)
    if cached is not None:
        return cached
    compiled = CompiledBitCSP(csp, max_bits=max_bits)
    csp._bit_compiled = compiled  # type: ignore[attr-defined]
    return compiled


#: persistent per-state bytes of the compiled form, itemized: packed
#: int64 state mask (8) + int32 violation count (4) + lazily
#: materialized float64 quality row (8) + bool fit mask (1)
STATE_BYTES = 8 + 4 + 8 + 1
#: transient per-state scratch during constraint lowering: the int64
#: temporary of the popcount/shift kernels (8) plus the int64 subcube /
#: accumulation buffer of the table and linear kernels (8)
LOWERING_SCRATCH_BYTES = 8 + 8
#: per-state bytes of one constraint's satisfaction row (bool)
SAT_ROW_BYTES = 1


def estimate_compile_bytes(csp: CSP) -> Optional[int]:
    """Upper-bound the compiled footprint of ``csp`` without allocating.

    Itemized per state: :data:`STATE_BYTES` for the persistent packed
    arrays, :data:`LOWERING_SCRATCH_BYTES` of transient scratch while a
    constraint is being lowered, and one :data:`SAT_ROW_BYTES`
    satisfaction cell **per constraint** — the sat matrix dominates for
    constraint-heavy problems, so a budget check that only counted the
    packed state vector would under-estimate by a factor of
    ``n_constraints``.  Everything is Python ints, so the estimate
    itself never overflows or allocates.  Pinned against the measured
    ``nbytes`` of real compiles (:func:`measured_compile_bytes`) by the
    bit-engine test suite.  Returns ``None`` for CSPs the bit engine
    cannot compile at all (non-boolean variables), where a memory
    budget is moot because compilation already falls back.
    """
    if any(not v.is_boolean for v in csp.variables):
        return None
    n = len(csp.variables)
    per_state = (
        STATE_BYTES
        + LOWERING_SCRATCH_BYTES
        + SAT_ROW_BYTES * len(csp.constraints)
    )
    return (1 << n) * per_state


def measured_compile_bytes(compiled: CompiledBitCSP) -> int:
    """Actual ``nbytes`` held by a compiled form's persistent arrays.

    Sums the packed states, the per-constraint sat matrix, violation
    counts, fit mask, and the (force-materialized) quality table — the
    ground truth :func:`estimate_compile_bytes` must upper-bound.
    """
    return int(
        compiled.states.nbytes
        + compiled.sat.nbytes
        + compiled.violations.nbytes
        + compiled.fit_mask.nbytes
        + compiled.quality_table().nbytes
    )


# -- hypercube BFS kernels -------------------------------------------------


def _flip_masks(n: int) -> np.ndarray:
    return np.int64(1) << np.arange(n, dtype=np.int64)


def hamming_distances(fit_mask: np.ndarray, n: int) -> np.ndarray:
    """Distance from every state to the nearest fit state, by BFS.

    Level-synchronous breadth-first search over the n-cube: the frontier
    is an index array, neighbors come from one XOR broadcast
    (``frontier[:, None] ^ flip_masks``), and each level settles all
    states at that distance at once.  Because single-bit flips generate
    the hypercube, the BFS level equals the minimum Hamming distance to
    the fit set — exactly :meth:`BitSpace.recovery_distance` for all
    2^n states in one pass.  Unreachable (empty fit set) → ``-1``.
    """
    size = 1 << n
    if fit_mask.shape != (size,):
        raise ConfigurationError(
            f"fit mask must have shape ({size},), got {fit_mask.shape}"
        )
    dist = np.full(size, -1, dtype=np.int32)
    frontier = np.nonzero(fit_mask)[0].astype(np.int64)
    dist[frontier] = 0
    bits = _flip_masks(n)
    d = 0
    while frontier.size and d < n:
        cand = (frontier[:, None] ^ bits).ravel()
        cand = cand[dist[cand] < 0]
        if not cand.size:
            break
        cand = np.unique(cand)
        d += 1
        dist[cand] = d
        frontier = cand
    return dist


def add_bit_levels(
    goal_mask: np.ndarray, n: int, max_level: Optional[int] = None
) -> np.ndarray:
    """Baral–Eiter recovery levels for the deterministic repair encoding.

    Agent actions are ``repair_i``: set a failed bit to 1 (applicable
    iff bit ``i`` is 0), each with a single deterministic outcome —
    the spacecraft encoding of :meth:`Spacecraft.to_transition_system`.
    ``levels[s]`` is then the minimum number of repair steps from ``s``
    into the goal set, found by reverse BFS from the goals along
    "clear one set bit" predecessor edges (the predecessors of ``t``
    are exactly the states ``t ^ bit`` with ``bit`` set in ``t``).
    ``max_level`` truncates the fixpoint like
    :func:`repro.planning.kmaintain.compute_levels`; unleveled → ``-1``.
    """
    size = 1 << n
    if goal_mask.shape != (size,):
        raise ConfigurationError(
            f"goal mask must have shape ({size},), got {goal_mask.shape}"
        )
    max_level = n if max_level is None else min(max_level, n)
    levels = np.full(size, -1, dtype=np.int32)
    frontier = np.nonzero(goal_mask)[0].astype(np.int64)
    levels[frontier] = 0
    bits = _flip_masks(n)
    d = 0
    while frontier.size and d < max_level:
        cand = (frontier[:, None] ^ bits)
        # keep only "clear a set bit" edges: the XOR removed a bit
        cand = cand[cand < frontier[:, None]].ravel()
        cand = cand[levels[cand] < 0]
        if not cand.size:
            break
        cand = np.unique(cand)
        d += 1
        levels[cand] = d
        frontier = cand
    return levels


def clear_bit_ball(
    seed_mask: np.ndarray, n: int, radius: int
) -> np.ndarray:
    """All states reachable from the seeds by clearing ≤ ``radius`` bits.

    The debris damage envelope: BFS along "clear one set bit" edges,
    truncated at depth ``radius``.  Returns a boolean membership mask
    (seeds included, radius 0 → the seeds themselves).
    """
    size = 1 << n
    if seed_mask.shape != (size,):
        raise ConfigurationError(
            f"seed mask must have shape ({size},), got {seed_mask.shape}"
        )
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")
    member = seed_mask.copy()
    frontier = np.nonzero(seed_mask)[0].astype(np.int64)
    bits = _flip_masks(n)
    for _ in range(min(radius, n)):
        if not frontier.size:
            break
        cand = frontier[:, None] ^ bits
        cand = cand[cand < frontier[:, None]].ravel()
        cand = cand[~member[cand]]
        if not cand.size:
            break
        cand = np.unique(cand)
        member[cand] = True
        frontier = cand
    return member
