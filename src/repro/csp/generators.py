"""Random CSP instance generators.

Stress-test infrastructure for the solver stack: random binary CSPs in
the classic (n, domain, density, tightness) model and random boolean
clause problems (k-SAT-shaped).  Used by property tests to compare the
backtracking solver and AC-3 against exhaustive enumeration, and handy
for benchmarking environment difficulty in DCSP experiments.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .constraints import Constraint, PredicateConstraint, TableConstraint
from .problem import CSP
from .variables import Variable, boolean_variables

__all__ = ["random_binary_csp", "random_clause_csp"]


def random_binary_csp(
    n_variables: int,
    domain_size: int,
    density: float,
    tightness: float,
    seed: SeedLike = None,
) -> CSP:
    """The classic random binary CSP model ⟨n, d, p1, p2⟩.

    ``density`` (p1) is the fraction of variable pairs constrained;
    ``tightness`` (p2) is the fraction of value pairs *forbidden* by each
    constraint.  Constraints are table constraints listing the allowed
    pairs, so they are exactly reproducible from the seed.
    """
    if n_variables < 2:
        raise ConfigurationError(
            f"n_variables must be >= 2, got {n_variables}"
        )
    if domain_size < 1:
        raise ConfigurationError(
            f"domain_size must be >= 1, got {domain_size}"
        )
    if not 0.0 <= density <= 1.0:
        raise ConfigurationError(f"density must be in [0, 1], got {density}")
    if not 0.0 <= tightness <= 1.0:
        raise ConfigurationError(
            f"tightness must be in [0, 1], got {tightness}"
        )
    rng = make_rng(seed)
    variables = [
        Variable(f"v{i}", tuple(range(domain_size)))
        for i in range(n_variables)
    ]
    pairs = list(combinations(range(n_variables), 2))
    n_constraints = int(round(density * len(pairs)))
    chosen = rng.choice(len(pairs), size=n_constraints, replace=False)
    all_value_pairs = [
        (a, b) for a in range(domain_size) for b in range(domain_size)
    ]
    n_forbidden = int(round(tightness * len(all_value_pairs)))
    constraints: list[Constraint] = []
    for idx in chosen:
        i, j = pairs[int(idx)]
        forbidden_idx = rng.choice(
            len(all_value_pairs), size=n_forbidden, replace=False
        )
        forbidden = {all_value_pairs[int(k)] for k in forbidden_idx}
        allowed = [vp for vp in all_value_pairs if vp not in forbidden]
        constraints.append(
            TableConstraint([f"v{i}", f"v{j}"], allowed, name=f"t{i}_{j}")
        )
    return CSP(variables, constraints)


def random_clause_csp(
    n_variables: int,
    n_clauses: int,
    clause_size: int = 3,
    seed: SeedLike = None,
) -> CSP:
    """Random k-SAT as a boolean CSP: each clause is a disjunction of
    ``clause_size`` random literals over distinct variables.

    Around n_clauses/n_variables ≈ 4.27 (for k=3) instances cross the
    satisfiability phase transition — the hard region for solvers.
    """
    if n_variables < 1:
        raise ConfigurationError(
            f"n_variables must be >= 1, got {n_variables}"
        )
    if clause_size < 1 or clause_size > n_variables:
        raise ConfigurationError(
            f"clause_size must be in [1, {n_variables}], got {clause_size}"
        )
    if n_clauses < 0:
        raise ConfigurationError(f"n_clauses must be >= 0, got {n_clauses}")
    rng = make_rng(seed)
    variables = boolean_variables(n_variables, prefix="v")
    constraints: list[Constraint] = []
    for c in range(n_clauses):
        idx = rng.choice(n_variables, size=clause_size, replace=False)
        signs = rng.random(clause_size) < 0.5
        scope = [f"v{int(i)}" for i in idx]
        polarity = tuple(bool(s) for s in signs)

        def make_clause(pol):
            def clause(*values):
                return any(
                    bool(v) == p for v, p in zip(values, pol)
                )
            return clause

        constraints.append(
            PredicateConstraint(scope, make_clause(polarity),
                                name=f"clause{c}")
        )
    return CSP(variables, constraints)
