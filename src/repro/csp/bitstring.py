"""Bit-string configuration spaces.

The paper's formal model (§4.2, Fig. 4) represents a system status as a
bit string of length ``n``: "At any given time, the system takes one of
the 2^n possible configurations."  Recovery proceeds by flipping one bit
at a time, so the configuration space is the n-dimensional hypercube and
recovery cost is Hamming distance.

:class:`BitString` is an immutable, hashable configuration;
:class:`BitSpace` is the hypercube of all length-``n`` configurations with
neighbourhood and enumeration helpers used by the recoverability
machinery in :mod:`repro.core.recoverability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = [
    "BitString",
    "BitSpace",
    "to_matrix",
    "from_matrix",
    "pack_matrix",
    "packed_hamming",
]


@dataclass(frozen=True, order=True)
class BitString:
    """An immutable length-``n`` bit string backed by an integer mask.

    The integer encoding keeps Hamming-distance and flip operations O(1)
    in Python-level work, which matters when enumerating 2^n
    configurations for exhaustive recoverability checks.

    Bit ``i`` corresponds to the i-th system component (the paper's
    example gives each spacecraft component a single binary availability
    variable).
    """

    n: int
    mask: int = 0

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ConfigurationError(f"bit string length must be >= 0, got {self.n}")
        if self.mask < 0 or self.mask >= (1 << self.n):
            raise ConfigurationError(
                f"mask {self.mask:#x} out of range for {self.n}-bit string"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int | bool]) -> "BitString":
        """Build from an iterable of 0/1 values, index 0 first."""
        mask = 0
        n = 0
        for i, b in enumerate(bits):
            if b not in (0, 1, True, False):
                raise ConfigurationError(f"bit {i} is not boolean: {b!r}")
            if b:
                mask |= 1 << i
            n += 1
        return cls(n=n, mask=mask)

    @classmethod
    def from_string(cls, text: str) -> "BitString":
        """Parse ``"0110"`` style strings (leftmost character is bit 0)."""
        try:
            return cls.from_bits(int(c) for c in text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid bit-string literal {text!r}") from exc

    @classmethod
    def ones(cls, n: int) -> "BitString":
        """The all-good configuration ``1^n`` (the paper's constraint C = 1^n)."""
        return cls(n=n, mask=(1 << n) - 1 if n else 0)

    @classmethod
    def zeros(cls, n: int) -> "BitString":
        """The all-failed configuration ``0^n``."""
        return cls(n=n, mask=0)

    @classmethod
    def random(cls, n: int, seed: SeedLike = None, p_one: float = 0.5) -> "BitString":
        """Draw a uniform (or Bernoulli ``p_one``) random configuration."""
        rng = make_rng(seed)
        bits = rng.random(n) < p_one
        return cls.from_bits(bool(b) for b in bits)

    # -- accessors -------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self.n:
            raise IndexError(f"bit index {i} out of range for length {self.n}")
        return (self.mask >> i) & 1

    def __iter__(self) -> Iterator[int]:
        return ((self.mask >> i) & 1 for i in range(self.n))

    def to_array(self) -> np.ndarray:
        """Return the bits as a numpy uint8 vector (index 0 first).

        Round-trips exactly with :meth:`from_array`.
        """
        if self.n == 0:
            return np.zeros(0, dtype=np.uint8)
        nbytes = (self.n + 7) // 8
        raw = np.frombuffer(
            self.mask.to_bytes(nbytes, "little"), dtype=np.uint8
        )
        return np.unpackbits(raw, count=self.n, bitorder="little")

    @classmethod
    def from_array(cls, bits: np.ndarray) -> "BitString":
        """Build from a 1-D array of 0/1 values (index 0 first).

        Accepts any integer or boolean dtype; rejects values other than
        0 and 1.  The empty array maps to the length-0 bit string.
        """
        arr = np.asarray(bits)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"bit array must be 1-D, got shape {arr.shape}"
            )
        if arr.size == 0:
            return cls(n=0, mask=0)
        if not np.isin(arr, (0, 1)).all():
            raise ConfigurationError(
                "bit array values must all be 0 or 1"
            )
        packed = np.packbits(
            arr.astype(np.uint8), bitorder="little"
        ).tobytes()
        return cls(n=int(arr.size), mask=int.from_bytes(packed, "little"))

    def to_string(self) -> str:
        """Render as a ``"0110"`` literal (bit 0 leftmost)."""
        return "".join(str(b) for b in self)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.to_string()

    @property
    def popcount(self) -> int:
        """Number of 1 bits (e.g. number of good components)."""
        return self.mask.bit_count()

    def ones_indices(self) -> tuple[int, ...]:
        """Indices whose bit is 1."""
        return tuple(i for i in range(self.n) if (self.mask >> i) & 1)

    def zeros_indices(self) -> tuple[int, ...]:
        """Indices whose bit is 0."""
        return tuple(i for i in range(self.n) if not (self.mask >> i) & 1)

    # -- operations ------------------------------------------------------

    def flip(self, *indices: int) -> "BitString":
        """Return a copy with each index in ``indices`` flipped.

        Flipping one bit is the paper's atomic repair/adaptation step; the
        multi-index form models higher adaptability ("the number of bits
        an agent can flip at a time", §4.4).
        """
        mask = self.mask
        for i in indices:
            if not 0 <= i < self.n:
                raise ConfigurationError(
                    f"cannot flip bit {i} of a {self.n}-bit configuration"
                )
            mask ^= 1 << i
        return BitString(self.n, mask)

    def set_bits(self, indices: Iterable[int], value: int | bool) -> "BitString":
        """Return a copy with every index in ``indices`` forced to ``value``."""
        mask = self.mask
        for i in indices:
            if not 0 <= i < self.n:
                raise ConfigurationError(
                    f"cannot set bit {i} of a {self.n}-bit configuration"
                )
            if value:
                mask |= 1 << i
            else:
                mask &= ~(1 << i)
        return BitString(self.n, mask)

    def hamming(self, other: "BitString") -> int:
        """Hamming distance: minimum number of single-bit repair steps."""
        if other.n != self.n:
            raise ConfigurationError(
                f"length mismatch: {self.n} vs {other.n} bit strings"
            )
        return (self.mask ^ other.mask).bit_count()


class BitSpace:
    """The hypercube of all length-``n`` bit strings.

    Provides exhaustive enumeration (for analytic checks on small
    systems), neighbourhoods under single-bit flips, and breadth-first
    recovery distances toward a set of fit configurations.
    """

    def __init__(self, n: int):
        if n < 0:
            raise ConfigurationError(f"bit space dimension must be >= 0, got {n}")
        self.n = n

    @property
    def size(self) -> int:
        """Number of configurations, 2^n."""
        return 1 << self.n

    def all_states(self) -> Iterator[BitString]:
        """Enumerate every configuration (use only for small ``n``)."""
        for mask in range(self.size):
            yield BitString(self.n, mask)

    def neighbors(self, state: BitString) -> Iterator[BitString]:
        """All configurations one bit flip away."""
        self._check(state)
        for i in range(self.n):
            yield state.flip(i)

    def ball(self, state: BitString, radius: int) -> Iterator[BitString]:
        """All configurations within Hamming distance ``radius`` of ``state``.

        Models a damage event "of type D" that can perturb at most
        ``radius`` components at once.
        """
        self._check(state)
        if radius < 0:
            raise ConfigurationError(f"radius must be >= 0, got {radius}")
        from itertools import combinations

        radius = min(radius, self.n)
        for r in range(radius + 1):
            for idxs in combinations(range(self.n), r):
                yield state.flip(*idxs)

    def recovery_distance(
        self, state: BitString, fit: Sequence[BitString] | frozenset[BitString]
    ) -> int:
        """Minimum number of single-bit flips from ``state`` into ``fit``.

        Because any bit may be flipped at any step, this equals the
        minimum Hamming distance to the fit set; it is the exact optimal
        recovery time of the paper's one-flip-per-step repair process.
        Returns ``-1`` when ``fit`` is empty (recovery impossible).
        """
        self._check(state)
        best = -1
        for target in fit:
            d = state.hamming(target)
            if best < 0 or d < best:
                best = d
                if best == 0:
                    break
        return best

    def _check(self, state: BitString) -> None:
        if state.n != self.n:
            raise ConfigurationError(
                f"state has {state.n} bits but space has dimension {self.n}"
            )


# -- bulk ndarray converters (array-backed population engines) ----------


def to_matrix(bitstrings: Sequence[BitString]) -> np.ndarray:
    """Stack bit strings into an ``(N, n)`` uint8 matrix, row i = string i.

    All strings must share one length; the empty sequence maps to a
    ``(0, 0)`` matrix.
    """
    if not bitstrings:
        return np.zeros((0, 0), dtype=np.uint8)
    lengths = {bs.n for bs in bitstrings}
    if len(lengths) > 1:
        raise ConfigurationError(
            f"bit strings have mixed lengths: {sorted(lengths)}"
        )
    return np.stack([bs.to_array() for bs in bitstrings])


def from_matrix(matrix: np.ndarray) -> list[BitString]:
    """Inverse of :func:`to_matrix`: one :class:`BitString` per row."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"bit matrix must be 2-D, got shape {arr.shape}"
        )
    return [BitString.from_array(row) for row in arr]


def pack_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack an ``(N, n)`` 0/1 matrix into ``(N, ceil(n/64))`` uint64 words.

    Bit ``i`` of a row lands in word ``i // 64`` (little-endian bit
    order), so XOR + popcount over the packed form computes Hamming
    distances in ``n/64`` word operations per pair — the fast path for
    wide genomes.
    """
    arr = np.ascontiguousarray(matrix, dtype=np.uint8)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"bit matrix must be 2-D, got shape {arr.shape}"
        )
    n = arr.shape[1]
    words = max(1, (n + 63) // 64)
    padded = np.zeros((arr.shape[0], words * 8), dtype=np.uint8)
    if n:
        padded[:, : (n + 7) // 8] = np.packbits(
            arr, axis=1, bitorder="little"
        )
    return padded.view("<u8")


def packed_hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise Hamming distance between two :func:`pack_matrix` outputs."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    return np.bitwise_count(np.bitwise_xor(a, b)).sum(
        axis=-1, dtype=np.int64
    )
