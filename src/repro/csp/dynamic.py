"""Dynamic constraint satisfaction: environments that change under shocks.

This is the heart of the paper's formal model (§4.2, Fig. 4):

* a system status is a bit string (or finite-domain assignment);
* the environment is a constraint set C; a configuration is fit iff it
  satisfies C;
* an event (a shock of some type D) may change the environment C → C'
  and/or damage the system state;
* the system then adapts, flipping a bounded number of bits per step,
  until it is fit again.

:class:`DynamicCSP` is the scripted sequence of such events;
:class:`DCSPSimulator` runs the adapt-repair loop and emits a
:class:`~repro.core.quality.QualityTrace` so the Bruneau metric and the
k-recoverability machinery both consume the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Sequence, Union

import numpy as np

from ..core.quality import QualityTrace
from ..errors import ConfigurationError, SimulationError
from ..rng import SeedLike, make_rng, spawn
from ..runtime import trace
from .constraints import Constraint
from .problem import CSP
from .variables import Variable

__all__ = [
    "EnvironmentShift",
    "StateDamage",
    "Perturbation",
    "DynamicCSP",
    "DCSPRun",
    "DCSPSimulator",
]


@dataclass(frozen=True)
class EnvironmentShift:
    """An event that replaces the constraint set: C → C'.

    ``constraints`` is the complete new environment.  ``label`` names the
    shock type D for reporting.
    """

    time: int
    constraints: tuple[Constraint, ...]
    label: str = "environment-shift"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.time}")
        object.__setattr__(self, "constraints", tuple(self.constraints))


@dataclass(frozen=True)
class StateDamage:
    """An event that corrupts the system state (e.g. debris hits components).

    ``assignment_update`` maps variable names to forced new values.
    """

    time: int
    assignment_update: tuple[tuple[str, object], ...]
    label: str = "state-damage"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.time}")
        object.__setattr__(
            self, "assignment_update", tuple(tuple(p) for p in self.assignment_update)
        )

    @classmethod
    def failing(cls, time: int, names: Iterable[str], label: str = "state-damage"):
        """Damage that sets each named boolean component to 0 (failed)."""
        return cls(time, tuple((n, 0) for n in names), label)


Perturbation = Union[EnvironmentShift, StateDamage]


class DynamicCSP:
    """A CSP whose constraint set evolves under a scripted event stream."""

    def __init__(
        self,
        variables: Sequence[Variable],
        initial_constraints: Sequence[Constraint],
        events: Sequence[Perturbation] = (),
    ):
        self.variables = tuple(variables)
        self.initial_constraints = tuple(initial_constraints)
        self.events = tuple(sorted(events, key=lambda e: e.time))
        # validate every environment against the variable set
        CSP(self.variables, self.initial_constraints)
        for event in self.events:
            if isinstance(event, EnvironmentShift):
                CSP(self.variables, event.constraints)
            elif isinstance(event, StateDamage):
                names = {v.name for v in self.variables}
                for name, _ in event.assignment_update:
                    if name not in names:
                        raise ConfigurationError(
                            f"damage event at t={event.time} touches unknown "
                            f"variable {name!r}"
                        )
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown event type: {event!r}")
        # one CSP per distinct environment (constraint tuple), built
        # lazily: csp_at is called every simulated step, and a stable
        # CSP identity lets the bit engine cache its compiled form
        self._csp_cache: Dict[int, CSP] = {}

    def csp_at(self, time: int) -> CSP:
        """The environment (as a static CSP) in force at integer time ``time``.

        Environments are interned: the same constraint set always maps
        to the same :class:`CSP` instance (CSPs are immutable), so
        repeated calls cost a scan over the event list, not a rebuild.
        """
        constraints = self.initial_constraints
        for event in self.events:
            if event.time <= time and isinstance(event, EnvironmentShift):
                constraints = event.constraints
        key = id(constraints)
        cached = self._csp_cache.get(key)
        if cached is None:
            cached = CSP(self.variables, constraints)
            self._csp_cache[key] = cached
        return cached

    def events_at(self, time: int) -> list[Perturbation]:
        """Events that fire exactly at ``time``."""
        return [e for e in self.events if e.time == time]

    @property
    def horizon(self) -> int:
        """Last scripted event time (0 when the stream is empty)."""
        return max((e.time for e in self.events), default=0)


RepairFn = Callable[[CSP, Dict[str, object]], Dict[str, object]]


@dataclass
class DCSPRun:
    """Result of simulating a dynamic CSP.

    ``trace`` is the Q(t) signal (fraction of satisfied constraints);
    ``states`` holds the assignment after each step; ``fit`` flags
    whether the system was fit at each step; ``events_applied`` records
    (time, label) for every perturbation that fired.
    """

    trace: QualityTrace
    states: list[Dict[str, object]]
    fit: list[bool]
    events_applied: list[tuple[int, str]] = field(default_factory=list)

    @property
    def always_fit(self) -> bool:
        """Whether the system never left the fit set."""
        return all(self.fit)

    def recovery_steps_after(self, time: int) -> Optional[int]:
        """Steps from ``time`` until the system is next fit (None = never)."""
        if time < 0 or time >= len(self.fit):
            raise ConfigurationError(f"time {time} outside the simulated horizon")
        for t in range(time, len(self.fit)):
            if self.fit[t]:
                return t - time
        return None


class DCSPSimulator:
    """Run the adapt-repair loop of the paper's model.

    Each integer step: (1) apply the events scheduled for this step;
    (2) if the configuration is unfit, flip up to ``flips_per_step``
    greedily-chosen bits toward satisfaction; (3) record quality.

    ``flips_per_step`` is the adaptability parameter; higher values model
    systems that can adapt faster (paper §4.4).

    ``engine`` selects the CSP kernels (see
    :func:`repro.csp.engine.make_csp_engine`; default honours
    ``REPRO_CSP_ENGINE``).  The bit engine compiles each distinct
    environment once and replays the greedy repair on packed state
    masks — identical runs, draw-for-draw, to the object engine.  The
    tiled engine runs the same loop through lazily-indexed views
    (:class:`~repro.csp.tiledengine.TiledBitCSP` computes just the
    ``mask ^ flip_masks`` neighborhoods each tick instead of a 2^n
    table), so DCSP runs scale past n = 20 with per-tick cost Θ(n ·
    n_constraints).  Non-boolean CSPs, ``n`` beyond the enumeration
    cap, and damage events forcing non-boolean values all fall back to
    the object loop automatically.
    """

    def __init__(
        self,
        dynamic: DynamicCSP,
        flips_per_step: int = 1,
        engine=None,
    ):
        from .engine import make_csp_engine

        if flips_per_step < 0:
            raise ConfigurationError(
                f"flips_per_step must be >= 0, got {flips_per_step}"
            )
        self.dynamic = dynamic
        self.flips_per_step = flips_per_step
        self.engine = make_csp_engine(engine)

    def _compiled_timeline(self, horizon: int):
        """One compiled environment per step, or ``None`` to fall back."""
        for event in self.dynamic.events:
            if isinstance(event, StateDamage) and event.time < horizon:
                for _, value in event.assignment_update:
                    if not (value == 0 or value == 1):
                        return None
        comps = []
        for t in range(horizon):
            comp = self.engine.try_compile(self.dynamic.csp_at(t))
            if comp is None:
                return None
            comps.append(comp)
        return comps

    def run(
        self,
        initial: Dict[str, object],
        horizon: Optional[int] = None,
        seed: SeedLike = None,
    ) -> DCSPRun:
        """Simulate from ``initial`` for ``horizon`` steps (>= event horizon)."""
        rng = make_rng(seed)
        horizon = self.dynamic.horizon + len(self.dynamic.variables) + 1 \
            if horizon is None else horizon
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        state = dict(initial)
        csp = self.dynamic.csp_at(0)
        csp.validate_assignment(state)
        if not csp.is_complete(state):
            raise SimulationError("initial assignment must bind every variable")

        tr = trace.current()
        comps = self._compiled_timeline(horizon)
        if comps is not None:
            with tr.timer("csp.dcsp.bit"):
                result = self._run_bits(state, horizon, rng, comps)
            tr.count("csp.dcsp.runs.bit")
            return result
        with tr.timer("csp.dcsp.object"):
            result = self._run_object(state, horizon, rng)
        tr.count("csp.dcsp.runs.object")
        return result

    def _run_object(
        self, state: Dict[str, object], horizon: int, rng
    ) -> DCSPRun:
        times: list[float] = []
        quality: list[float] = []
        states: list[Dict[str, object]] = []
        fit: list[bool] = []
        applied: list[tuple[int, str]] = []

        for t in range(horizon):
            for event in self.dynamic.events_at(t):
                applied.append((t, event.label))
                if isinstance(event, StateDamage):
                    for name, value in event.assignment_update:
                        state[name] = value
            csp = self.dynamic.csp_at(t)
            if not csp.is_fit(state) and self.flips_per_step > 0:
                state = self._repair_step(csp, state, rng)
            times.append(float(t))
            quality.append(csp.quality(state))
            states.append(dict(state))
            fit.append(csp.is_fit(state))

        if len(times) == 1:  # QualityTrace needs two samples
            times.append(times[0] + 1.0)
            quality.append(quality[0])
        return DCSPRun(
            trace=QualityTrace.from_samples(times, quality),
            states=states,
            fit=fit,
            events_applied=applied,
        )

    def _repair_step(
        self,
        csp: CSP,
        state: Dict[str, object],
        rng,
    ) -> Dict[str, object]:
        """Flip up to ``flips_per_step`` variables, each greedily chosen."""
        state = dict(state)
        for _ in range(self.flips_per_step):
            if csp.is_fit(state):
                break
            best_move: Optional[tuple[str, object]] = None
            best_count = csp.conflict_count(state)
            candidates: list[tuple[str, object]] = []
            for var in csp.variables:
                for value in var.domain:
                    if value == state[var.name]:
                        continue
                    trial = dict(state)
                    trial[var.name] = value
                    count = csp.conflict_count(trial)
                    if count < best_count:
                        best_count = count
                        candidates = [(var.name, value)]
                    elif count == best_count and candidates:
                        candidates.append((var.name, value))
            if candidates:
                best_move = candidates[rng.integers(len(candidates))]
                state[best_move[0]] = best_move[1]
            else:
                # No improving move: random walk on a conflicted variable.
                conflicted = sorted(
                    {v for c in csp.violated_constraints(state) for v in c.scope}
                )
                if not conflicted:
                    break
                name = conflicted[rng.integers(len(conflicted))]
                domain = [v for v in csp.by_name[name].domain if v != state[name]]
                if domain:
                    state[name] = domain[rng.integers(len(domain))]
        return state

    # -- compiled bit-matrix path ----------------------------------------

    def _run_bits(
        self, state: Dict[str, object], horizon: int, rng, comps
    ) -> DCSPRun:
        """The adapt-repair loop on packed masks (one env table per step)."""
        comp0 = comps[0]
        name_index = {name: i for i, name in enumerate(comp0.names)}
        mask = comp0.mask_of(state)

        times: list[float] = []
        quality: list[float] = []
        states: list[Dict[str, object]] = []
        fit: list[bool] = []
        applied: list[tuple[int, str]] = []

        for t in range(horizon):
            for event in self.dynamic.events_at(t):
                applied.append((t, event.label))
                if isinstance(event, StateDamage):
                    for name, value in event.assignment_update:
                        i = name_index[name]
                        if value:
                            mask |= 1 << i
                        else:
                            mask &= ~(1 << i)
            comp = comps[t]
            if comp.violations[mask] != 0 and self.flips_per_step > 0:
                for _ in range(self.flips_per_step):
                    if comp.violations[mask] == 0:
                        break
                    counts = comp.violations[mask ^ comp.flip_masks]
                    mask = self._pick_flip(comp, mask, counts, rng)
            times.append(float(t))
            quality.append(float(comp.quality_table()[mask]))
            states.append(comp.assignment_of(mask))
            fit.append(bool(comp.violations[mask] == 0))

        if len(times) == 1:  # QualityTrace needs two samples
            times.append(times[0] + 1.0)
            quality.append(quality[0])
        return DCSPRun(
            trace=QualityTrace.from_samples(times, quality),
            states=states,
            fit=fit,
            events_applied=applied,
        )

    @staticmethod
    def _pick_flip(comp, mask: int, counts, rng) -> int:
        """One greedy flip on a packed mask, draw-for-draw with the
        object :meth:`_repair_step` body (candidate list in variable
        declaration order, ties appended only after an improving move,
        random walk over name-sorted conflicted variables — including
        the object path's draw for the single-element boolean domain).
        """
        best_count = int(comp.violations[mask])
        candidates: list[int] = []
        for i in range(comp.n):
            count = int(counts[i])
            if count < best_count:
                best_count = count
                candidates = [i]
            elif count == best_count and candidates:
                candidates.append(i)
        if candidates:
            i = candidates[int(rng.integers(len(candidates)))]
            return mask ^ (1 << i)
        conflicted = comp.conflicted_variable_order(mask)
        if not conflicted:  # pragma: no cover - unfit implies conflicts
            return mask
        i = conflicted[int(rng.integers(len(conflicted)))]
        rng.integers(1)  # the object path indexes the 1-element domain
        return mask ^ (1 << i)

    # -- batched sweeps ---------------------------------------------------

    def run_batch(
        self,
        initials: Sequence[Dict[str, object]],
        horizon: Optional[int] = None,
        seed: SeedLike = None,
    ) -> list[DCSPRun]:
        """Simulate many replicas of the same event script.

        Replica ``r`` runs exactly as ``run(initials[r], horizon,
        seed=children[r])`` with the child generators derived via
        :func:`repro.rng.spawn` — the contract the sweep harness relies
        on.  Under the bit engine the per-tick repair evaluates all
        replicas' candidate flips in one violation-table gather per flip
        slot, keeping only the tie-break draws per replica.
        """
        initials = [dict(i) for i in initials]
        rngs = spawn(make_rng(seed), len(initials))
        horizon = self.dynamic.horizon + len(self.dynamic.variables) + 1 \
            if horizon is None else horizon
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        if not initials:
            return []
        tr = trace.current()
        comps = self._compiled_timeline(horizon)
        if comps is None:
            return [
                self.run(initial, horizon=horizon, seed=child)
                for initial, child in zip(initials, rngs)
            ]
        with tr.timer("csp.dcsp.bit"):
            results = self._run_batch_bits(initials, horizon, rngs, comps)
        tr.count("csp.dcsp.runs.bit", len(initials))
        return results

    def _run_batch_bits(
        self,
        initials: Sequence[Dict[str, object]],
        horizon: int,
        rngs,
        comps,
    ) -> list[DCSPRun]:
        comp0 = comps[0]
        csp0 = self.dynamic.csp_at(0)
        name_index = {name: i for i, name in enumerate(comp0.names)}
        n_rep = len(initials)
        masks = np.empty(n_rep, dtype=np.int64)
        for r, initial in enumerate(initials):
            csp0.validate_assignment(initial)
            if not csp0.is_complete(initial):
                raise SimulationError(
                    "initial assignment must bind every variable"
                )
            masks[r] = comp0.mask_of(initial)

        times = [[] for _ in range(n_rep)]  # type: list[list[float]]
        quality = [[] for _ in range(n_rep)]  # type: list[list[float]]
        states = [[] for _ in range(n_rep)]  # type: list[list[dict]]
        fits = [[] for _ in range(n_rep)]  # type: list[list[bool]]
        applied = [[] for _ in range(n_rep)]  # type: list[list[tuple]]

        for t in range(horizon):
            for event in self.dynamic.events_at(t):
                for r in range(n_rep):
                    applied[r].append((t, event.label))
                if isinstance(event, StateDamage):
                    for name, value in event.assignment_update:
                        bit = np.int64(1) << np.int64(name_index[name])
                        if value:
                            masks |= bit
                        else:
                            masks &= ~bit
            comp = comps[t]
            if self.flips_per_step > 0:
                for _ in range(self.flips_per_step):
                    unfit = np.nonzero(comp.violations[masks] > 0)[0]
                    if not unfit.size:
                        break
                    # one gather scores every replica's n candidate
                    # flips; only the tie-breaks stay per-replica
                    counts = comp.violations[
                        masks[unfit, None] ^ comp.flip_masks
                    ]
                    for row, r in enumerate(unfit):
                        masks[r] = self._pick_flip(
                            comp, int(masks[r]), counts[row], rngs[r]
                        )
            q = comp.quality_table()[masks]
            ok = comp.violations[masks] == 0
            for r in range(n_rep):
                times[r].append(float(t))
                quality[r].append(float(q[r]))
                states[r].append(comp.assignment_of(int(masks[r])))
                fits[r].append(bool(ok[r]))

        results = []
        for r in range(n_rep):
            ts, qs = times[r], quality[r]
            if len(ts) == 1:  # QualityTrace needs two samples
                ts = ts + [ts[0] + 1.0]
                qs = qs + [qs[0]]
            results.append(DCSPRun(
                trace=QualityTrace.from_samples(ts, qs),
                states=states[r],
                fit=fits[r],
                events_applied=applied[r],
            ))
        return results
