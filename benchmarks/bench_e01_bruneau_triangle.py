"""E01 — Bruneau resilience triangle (paper Fig. 3, §4.1).

Claim: resilience loss R = ∫(100 − Q)dt; smaller triangle ⇔ more
resilient, along two dimensions (resistance = drop depth, recoverability
= time to recover).  We regenerate the triangle family: sweeping drop
depth and recovery time independently, R scales linearly in each.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.bruneau import assess, resilience_loss, resilience_score
from repro.core.quality import linear_recovery_trace


def run_experiment():
    rows = []
    for depth in (20.0, 40.0, 60.0, 80.0):
        for recovery in (5.0, 10.0, 20.0, 40.0):
            trace = linear_recovery_trace(t0=10.0, t1=10.0 + recovery,
                                          depth=depth, t_post=60.0)
            a = assess(trace)
            rows.append({
                "drop_depth": depth,
                "recovery_time": recovery,
                "loss_R": round(a.loss, 1),
                "expected_triangle": depth * recovery / 2,
                "score": round(resilience_score(trace, horizon=60.0), 4),
            })
    return rows


def test_e01_bruneau_triangle(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE01: Bruneau triangle R = depth x recovery / 2")
    print(render_table(rows))
    for row in rows:
        # the measured loss is exactly the triangle area
        assert abs(row["loss_R"] - row["expected_triangle"]) < \
            0.01 * row["expected_triangle"] + 1.0
    # smaller triangle => higher resilience score, in both dimensions
    by_key = {(r["drop_depth"], r["recovery_time"]): r["score"] for r in rows}
    assert by_key[(20.0, 5.0)] > by_key[(80.0, 5.0)]
    assert by_key[(20.0, 5.0)] > by_key[(20.0, 40.0)]
    assert by_key[(80.0, 40.0)] == min(by_key.values())
