"""E18 — Mode switching vs always-prepared vs never-switch (paper §3.4.6).

Claim (Takeuchi, as relayed): "for such extreme and rare events, it
would be better to ignore these risks in the normal life ... if such
disaster do happen, the society has to change its mode and get ready to
help each other."  We regenerate the long-run welfare comparison of
three standing policies under rare heavy-tailed shocks:

* never-switch: efficiency policy always (ignores risk, never adapts);
* always-prepared: permanent reserves and drills (pays welfare daily);
* mode-switching: efficiency in peace, emergency mode on declaration.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.modes.policies import ALWAYS_PREPARED_POLICY
from repro.modes.switching import ModeController, SocietySimulator
from repro.shocks.arrivals import PoissonArrivals
from repro.shocks.distributions import ParetoMagnitudes


def controllers():
    return [
        ("never-switch", ModeController.never_switching),
        ("always-prepared",
         lambda: ModeController.always_prepared(ALWAYS_PREPARED_POLICY)),
        ("mode-switching",
         lambda: ModeController(declare_at=15.0, stand_down_at=3.0)),
    ]


def run_experiment():
    shocks = PoissonArrivals(
        rate=0.02, magnitudes=ParetoMagnitudes(alpha=1.4, xmin=15.0)
    )
    society = SocietySimulator(shocks, output=1.0, base_repair=0.6,
                               collapse_at=100.0)
    trials = 60
    horizon = 400
    rows = []
    for label, make_controller in controllers():
        welfare, collapses, emergency = [], 0, []
        for seed in range(trials):
            outcome = society.run(make_controller(), horizon=horizon,
                                  seed=seed)
            welfare.append(outcome.total_welfare)
            collapses += outcome.collapsed
            emergency.append(outcome.emergency_periods)
        rows.append({
            "strategy": label,
            "mean_welfare": round(float(np.mean(welfare)), 1),
            "collapse_rate": round(collapses / trials, 3),
            "mean_emergency_periods": round(float(np.mean(emergency)), 1),
        })
    return rows


def test_e18_mode_switching(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE18: welfare under rare X-events, three standing strategies")
    print(render_table(rows))
    by = {row["strategy"]: row for row in rows}
    # switching survives (collapses rarely) while living near full welfare
    assert by["mode-switching"]["collapse_rate"] <= \
        by["never-switch"]["collapse_rate"]
    assert by["mode-switching"]["mean_welfare"] > \
        by["never-switch"]["mean_welfare"]
    # always-prepared pays a permanent welfare tax Takeuchi argues against
    assert by["mode-switching"]["mean_welfare"] > \
        by["always-prepared"]["mean_welfare"]
    # the switcher actually uses its emergency mode
    assert by["mode-switching"]["mean_emergency_periods"] > 0
    assert by["never-switch"]["mean_emergency_periods"] == 0
