"""A07 (ablation) — Adaptation distance between environments (Fig. 4).

The schematic in Fig. 4 shows the system adapting after the environment
changes.  This ablation quantifies the adaptation cost as a function of
how much the new environment C' overlaps the old C: the analytic
worst-case bound (Hamming distance between fit sets) and the simulated
recovery time of the DCSP adapt-repair loop, which must respect it.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.recoverability import adaptation_bound
from repro.csp.constraints import LinearConstraint
from repro.csp.dynamic import DCSPSimulator, DynamicCSP, EnvironmentShift
from repro.csp.problem import boolean_csp
from repro.csp.variables import boolean_variables

N = 10


def constraints_wanting(values):
    """Per-component constraints forcing x_i == values[i]."""
    out = []
    for i, value in enumerate(values):
        op = ">=" if value else "<="
        out.append(LinearConstraint([f"x{i}"], [1.0], op, float(value),
                                    name=f"want{i}"))
    return tuple(out)


def run_experiment():
    before_values = [1] * N
    rows = []
    for flipped in (0, 2, 5, 10):
        after_values = [0 if i < flipped else 1 for i in range(N)]
        before = boolean_csp(N, constraints_wanting(before_values))
        after = boolean_csp(N, constraints_wanting(after_values))
        bound = adaptation_bound(before, after)
        # simulate the shift with the DCSP adapt-repair loop
        dynamic = DynamicCSP(
            boolean_variables(N),
            constraints_wanting(before_values),
            [EnvironmentShift(2, constraints_wanting(after_values))],
        )
        run = DCSPSimulator(dynamic, flips_per_step=1).run(
            {f"x{i}": 1 for i in range(N)}, horizon=N + 6, seed=0
        )
        observed = run.recovery_steps_after(2)
        rows.append({
            "requirements_flipped": flipped,
            "analytic_bound": bound,
            "simulated_recovery": observed,
        })
    return rows


def test_a07_environment_shift(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nA07: adaptation cost vs environment overlap (Fig. 4)")
    print(render_table(rows))
    for row in rows:
        # the analytic bound equals the number of re-ranked requirements
        assert row["analytic_bound"] == row["requirements_flipped"]
        # the greedy simulated loop achieves the bound on factored
        # constraints (one in-step repair already runs at the shift step)
        assert row["simulated_recovery"] is not None
        assert row["simulated_recovery"] <= max(row["analytic_bound"], 0)
    bounds = [row["analytic_bound"] for row in rows]
    assert bounds == sorted(bounds)
