"""E11 — Interoperability as redundancy (paper §3.1.3).

Claim: after 9/11 "the police departments, the fire departments, and the
secret service had difficulty in communication ... Interoperability
enables one component to function as a back-up of another component.
Thus, interoperability is a form of redundancy."  We regenerate mission
availability under equipment outages across interoperability levels.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.redundancy.interop import InteropNetwork, availability_under_outages


def partially_interoperable(n: int, reach: int) -> InteropNetwork:
    """Each agency can also serve the next ``reach`` agencies (ring)."""
    matrix = tuple(
        tuple(
            ((mission - agency) % n) <= reach
            for mission in range(n)
        )
        for agency in range(n)
    )
    return InteropNetwork(n_agencies=n, can_serve=matrix)


def run_experiment():
    n = 6
    rows = []
    for outage_p in (0.1, 0.3, 0.5):
        for label, network in (
            ("siloed", InteropNetwork.siloed(n)),
            ("reach-1", partially_interoperable(n, 1)),
            ("reach-2", partially_interoperable(n, 2)),
            ("full", InteropNetwork.fully_interoperable(n)),
        ):
            availability = availability_under_outages(
                network, outage_p, trials=3000, seed=5
            )
            rows.append({
                "outage_p": outage_p,
                "interoperability": label,
                "mission_availability": round(availability, 4),
            })
    return rows


def test_e11_interoperability(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE11: mission availability vs interoperability level")
    print(render_table(rows))
    for outage_p in (0.1, 0.3, 0.5):
        series = [
            r["mission_availability"] for r in rows
            if r["outage_p"] == outage_p
        ]
        # availability rises monotonically with interoperability reach
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
        # siloed availability is the bare service uptime
        assert series[0] < series[-1]
        assert abs(series[0] - (1 - outage_p)) < 0.03
