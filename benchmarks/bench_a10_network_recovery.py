"""A10 (ablation) — Network attack-and-recovery in Bruneau currency.

Connects the §5.1 network substrate to the §4.1 metric: a scale-free
network loses 25 % of its nodes to an attack, repair crews restore nodes
per step, and the giant-component trace is scored with the Bruneau loss.
Two dials: attacker intelligence (random vs hub-targeted) and repair
capacity (the adaptability dial) — resilience loss responds to both,
in the same units as every other system in the library.
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.analysis.tables import render_table
from repro.core.bruneau import assess
from repro.networks.attacks import RandomFailure, TargetedDegreeAttack
from repro.networks.generators import barabasi_albert
from repro.networks.healing import NetworkRecoverySimulator

N = scaled(200, 60)
HORIZON = scaled(60, 20)


def setup():
    """Generate the substrate network outside the timed region."""
    return barabasi_albert(N, 2, seed=20)


def run_experiment(g=None):
    if g is None:
        g = setup()
    rows = []
    for attack_label, attack in (("random", RandomFailure()),
                                 ("targeted", TargetedDegreeAttack())):
        for repairs in (1, 2, 5):
            sim = NetworkRecoverySimulator(g, attack,
                                           repairs_per_step=repairs)
            result = sim.run(attack_fraction=0.25, horizon=HORIZON, seed=21)
            a = assess(result.trace)
            rows.append({
                "attack": attack_label,
                "repairs_per_step": repairs,
                "min_giant_pct": round(result.trace.min_quality, 1),
                "bruneau_loss": round(a.loss, 1),
                "recovered": a.recovered,
                "availability_95": round(
                    result.trace.availability(threshold=95.0), 3
                ),
            })
    return rows


def test_a10_network_recovery(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nA10: attack-and-heal on BA(200), Bruneau-scored")
    print(render_table(rows))

    def get(attack, repairs, key):
        return next(
            r[key] for r in rows
            if r["attack"] == attack and r["repairs_per_step"] == repairs
        )

    # targeted attacks cut deeper than random at every repair rate
    for repairs in (1, 2, 5):
        assert get("targeted", repairs, "min_giant_pct") < \
            get("random", repairs, "min_giant_pct")
        assert get("targeted", repairs, "bruneau_loss") > \
            get("random", repairs, "bruneau_loss")
    # faster repair shrinks the triangle monotonically
    for attack in ("random", "targeted"):
        losses = [get(attack, r, "bruneau_loss") for r in (1, 2, 5)]
        assert losses == sorted(losses, reverse=True)
    # with enough capacity everything recovers within the horizon
    assert get("targeted", 5, "recovered")
