"""E19 — The strategy-tradeoff question on the multi-agent testbed
(paper §4.4).

Claim/question: "Should we invest our resource on redundancy, diversity,
adaptability ...?  What combination of resilience strategies is optimum
under a given condition is one of the questions that we would like to
answer" — using digital organisms where resource = redundancy, the
diversity index = diversity, and bits-flipped-per-step = adaptability.

Setup: a subsistence economy (income at full fitness exactly covers the
living cost) so initial endowments are not washed out by growth.  The
same budget buys either reserves, genome spread, or repair speed.  Two
shock regimes:

* **frequent-small** — the environment drifts a little every 12 steps;
* **rare-storm** — a burst of large, rapid environment jumps that no
  adaptation speed can track (the X-event cluster).

Measured answer (the paper's anticipated tradeoff): adaptability is
optimal under frequent small change; only redundancy survives the storm
— the optimum depends on the shock regime.

Runs on the array-backed engine by default (``REPRO_AGENT_ENGINE=object``
flips back to the reference engine) through the ``grid_sweep`` harness;
``REPRO_SWEEP_JOBS`` fans the regime × mix grid across processes.
"""

from __future__ import annotations

import os

import numpy as np

from conftest import run_once, scaled

from repro.agents.arrayengine import make_engine
from repro.agents.environment import ConstraintEnvironment, ShockSchedule
from repro.agents.population import seed_population
from repro.analysis.sweep import grid_sweep
from repro.analysis.tables import render_table
from repro.core.strategies import Strategy, StrategyMix

GENOME = 24
AGENTS = 40
BUDGET = 400.0
TRIALS = scaled(8, smoke=2)

MIXES = {
    "pure-redundancy": StrategyMix.pure(Strategy.REDUNDANCY),
    "pure-diversity": StrategyMix.pure(Strategy.DIVERSITY),
    "pure-adaptability": StrategyMix.pure(Strategy.ADAPTABILITY),
    "uniform-mix": StrategyMix.uniform(),
}

REGIMES = {
    "frequent-small": (ShockSchedule(period=12, severity=3), 150),
    "rare-storm": (ShockSchedule(period=3, severity=14, first=60), 81),
}


def run_regime(regime: str, strategy_mix: str):
    shocks, steps = REGIMES[regime]
    mix = MIXES[strategy_mix]
    survived = 0
    fitness = []
    for trial in range(TRIALS):
        env = ConstraintEnvironment.random(GENOME, tolerance=3,
                                           seed=500 + trial)
        population = seed_population(
            mix, env, n_agents=AGENTS, budget=BUDGET, seed=900 + trial
        )
        simulator = make_engine(
            income_rate=1.0, living_cost=1.0, replication_threshold=15.0,
            mutation_rate=0.01, capacity=120,
        )
        result = simulator.run(population, env, steps=steps, shocks=shocks,
                               seed=trial)
        survived += result.survived
        fitness.append(float(result.mean_fitness.mean()))
    return {
        "survival_rate": round(survived / TRIALS, 3),
        "mean_fitness": round(float(np.mean(fitness)), 3),
    }


def run_experiment():
    result = grid_sweep(
        {"regime": list(REGIMES), "strategy_mix": list(MIXES)},
        run_regime,
        n_jobs=int(os.environ.get("REPRO_SWEEP_JOBS", "1")),
    )
    return list(result.rows)


def test_e19_strategy_tradeoffs(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE19: same budget, different strategies, two shock regimes")
    print(render_table(rows))

    def get(regime, mix, key="survival_rate"):
        return next(
            r[key] for r in rows
            if r["regime"] == regime and r["strategy_mix"] == mix
        )

    # frequent-small: adaptability both survives and tracks best
    assert get("frequent-small", "pure-adaptability") == 1.0
    assert get("frequent-small", "pure-adaptability", "mean_fitness") >= \
        get("frequent-small", "pure-redundancy", "mean_fitness")
    # rare-storm: only deep reserves ride out the untrackable burst
    assert get("rare-storm", "pure-redundancy") >= 0.8
    assert get("rare-storm", "pure-adaptability") <= 0.2
    assert get("rare-storm", "pure-diversity") <= 0.2
    # the optimum strategy flips between regimes — the paper's tradeoff
    def winner(regime):
        candidates = [
            (get(regime, m), get(regime, m, "mean_fitness"), m)
            for m in ("pure-redundancy", "pure-diversity",
                      "pure-adaptability", "uniform-mix")
        ]
        return max(candidates)[2]

    assert winner("rare-storm") == "pure-redundancy"
    assert winner("frequent-small") != "pure-redundancy"
