"""E19 — The strategy-tradeoff question on the multi-agent testbed
(paper §4.4).

Claim/question: "Should we invest our resource on redundancy, diversity,
adaptability ...?  What combination of resilience strategies is optimum
under a given condition is one of the questions that we would like to
answer" — using digital organisms where resource = redundancy, the
diversity index = diversity, and bits-flipped-per-step = adaptability.

Setup: a subsistence economy (income at full fitness exactly covers the
living cost) so initial endowments are not washed out by growth.  The
same budget buys either reserves, genome spread, or repair speed.  Two
shock regimes:

* **frequent-small** — the environment drifts a little every 12 steps;
* **rare-storm** — a burst of large, rapid environment jumps that no
  adaptation speed can track (the X-event cluster).

Measured answer (the paper's anticipated tradeoff): adaptability is
optimal under frequent small change; only redundancy survives the storm
— the optimum depends on the shock regime.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.agents.environment import ConstraintEnvironment, ShockSchedule
from repro.agents.population import seed_population
from repro.agents.simulation import EvolutionSimulator
from repro.analysis.tables import render_table
from repro.core.strategies import Strategy, StrategyMix

GENOME = 24
AGENTS = 40
BUDGET = 400.0
TRIALS = 8


def mixes():
    return [
        ("pure-redundancy", StrategyMix.pure(Strategy.REDUNDANCY)),
        ("pure-diversity", StrategyMix.pure(Strategy.DIVERSITY)),
        ("pure-adaptability", StrategyMix.pure(Strategy.ADAPTABILITY)),
        ("uniform-mix", StrategyMix.uniform()),
    ]


def regimes():
    return [
        ("frequent-small", ShockSchedule(period=12, severity=3), 150),
        ("rare-storm", ShockSchedule(period=3, severity=14, first=60), 81),
    ]


def run_regime(mix: StrategyMix, shocks: ShockSchedule, steps: int):
    survived = 0
    fitness = []
    for trial in range(TRIALS):
        env = ConstraintEnvironment.random(GENOME, tolerance=3,
                                           seed=500 + trial)
        population = seed_population(
            mix, env, n_agents=AGENTS, budget=BUDGET, seed=900 + trial
        )
        simulator = EvolutionSimulator(
            income_rate=1.0, living_cost=1.0, replication_threshold=15.0,
            mutation_rate=0.01, capacity=120,
        )
        result = simulator.run(population, env, steps=steps, shocks=shocks,
                               seed=trial)
        survived += result.survived
        fitness.append(float(result.mean_fitness.mean()))
    return survived / TRIALS, float(np.mean(fitness))


def run_experiment():
    rows = []
    for regime_label, shocks, steps in regimes():
        for mix_label, mix in mixes():
            survival, fitness = run_regime(mix, shocks, steps)
            rows.append({
                "regime": regime_label,
                "strategy_mix": mix_label,
                "survival_rate": round(survival, 3),
                "mean_fitness": round(fitness, 3),
            })
    return rows


def test_e19_strategy_tradeoffs(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE19: same budget, different strategies, two shock regimes")
    print(render_table(rows))

    def get(regime, mix, key="survival_rate"):
        return next(
            r[key] for r in rows
            if r["regime"] == regime and r["strategy_mix"] == mix
        )

    # frequent-small: adaptability both survives and tracks best
    assert get("frequent-small", "pure-adaptability") == 1.0
    assert get("frequent-small", "pure-adaptability", "mean_fitness") >= \
        get("frequent-small", "pure-redundancy", "mean_fitness")
    # rare-storm: only deep reserves ride out the untrackable burst
    assert get("rare-storm", "pure-redundancy") >= 0.8
    assert get("rare-storm", "pure-adaptability") <= 0.2
    assert get("rare-storm", "pure-diversity") <= 0.2
    # the optimum strategy flips between regimes — the paper's tradeoff
    def winner(regime):
        candidates = [
            (get(regime, m), get(regime, m, "mean_fitness"), m)
            for m in ("pure-redundancy", "pure-diversity",
                      "pure-adaptability", "uniform-mix")
        ]
        return max(candidates)[2]

    assert winner("rare-storm") == "pure-redundancy"
    assert winner("frequent-small") != "pure-redundancy"
