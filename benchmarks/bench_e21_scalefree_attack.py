"""E21 — Robust-yet-fragile scale-free networks (paper §5.1).

Claim (Barabási, as relayed): "network-based systems that possess the
scale-free property are extremely robust against random failures of
system components.  However, when we consider ... a spreading virus that
is deliberately designed to attack the hubs of the network, such
connectivity becomes a vulnerability."

We regenerate the percolation comparison: giant-component curves for
scale-free (BA) vs homogeneous (ER) graphs under random failure vs
targeted hub removal, with the critical-fraction crossover.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, scaled

from repro.analysis.tables import render_table
from repro.networks.attacks import RandomFailure, TargetedDegreeAttack
from repro.networks.generators import barabasi_albert, erdos_renyi
from repro.networks.percolation import critical_fraction, percolation_curve

N = scaled(1000, 120)


def setup():
    """Build the graph ensemble once, outside the timed region.

    Generation cost is identical for every percolation engine, so the
    harness excludes it to time what actually differs: the curves.
    """
    ba = barabasi_albert(N, 2, seed=0)
    mean_degree = 2 * ba.n_edges / N
    er = erdos_renyi(N, mean_degree / (N - 1), seed=0)
    return ba, er


def run_experiment(graphs=None):
    ba, er = graphs if graphs is not None else setup()
    rows = []
    for graph_label, graph in (("scale-free (BA)", ba), ("random (ER)", er)):
        for attack_label, attack in (
            ("random-failure", RandomFailure()),
            ("targeted-hubs", TargetedDegreeAttack()),
        ):
            curve = percolation_curve(graph, attack, seed=1, resolution=60)
            rows.append({
                "graph": graph_label,
                "attack": attack_label,
                "giant_at_20pct_removed": round(curve.giant_at(0.2), 3),
                "critical_fraction": round(
                    critical_fraction(curve, threshold=0.05), 3
                ),
                "robustness_index": round(curve.robustness_index(), 4),
            })
    return rows


def test_e21_scalefree_attack(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE21: giant component under random failure vs targeted attack")
    print(render_table(rows))

    def get(graph, attack, key):
        return next(
            r[key] for r in rows if r["graph"] == graph and r["attack"] == attack
        )

    sf_rand = get("scale-free (BA)", "random-failure", "critical_fraction")
    sf_targ = get("scale-free (BA)", "targeted-hubs", "critical_fraction")
    er_rand = get("random (ER)", "random-failure", "critical_fraction")
    er_targ = get("random (ER)", "targeted-hubs", "critical_fraction")
    # robust: scale-free survives random failure up to high fractions
    assert sf_rand > 0.6
    # fragile: targeted hub removal shatters it several times earlier
    assert sf_targ < sf_rand / 2
    # the *asymmetry* is the scale-free signature: much weaker for ER
    assert (sf_rand - sf_targ) > (er_rand - er_targ) + 0.1
    # and under random failure, scale-free is at least as robust as ER
    assert get("scale-free (BA)", "random-failure", "robustness_index") >= \
        get("random (ER)", "random-failure", "robustness_index") - 0.02
