"""A03 (ablation) — Co-regulation adaptability (paper §3.3.3).

Claim (Ikegai, as relayed): "co-regulation is more flexible and faster
to adapt to the environment change", particularly for the
"rapidly-changing landscape of Internet-based services".  We regenerate
the regulation-gap comparison across drift speeds and for a disruptive
shock.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.management.regulation import (
    CO_REGULATION,
    SELF_REGULATION,
    TOP_DOWN_LAW,
    simulate_regulation,
)

SEEDS = range(12)


def mean_gap(regime, drift_sigma, shock_at=None):
    return float(np.mean([
        simulate_regulation(regime, periods=400, drift_sigma=drift_sigma,
                            shock_at=shock_at, shock_size=20.0,
                            seed=s).mean_gap
        for s in SEEDS
    ]))


def run_experiment():
    rows = []
    for drift_label, drift in (("slow-drift", 0.2), ("fast-drift", 1.5)):
        for regime in (TOP_DOWN_LAW, SELF_REGULATION, CO_REGULATION):
            rows.append({
                "environment": drift_label,
                "regime": regime.name,
                "mean_regulation_gap": round(mean_gap(regime, drift), 3),
            })
    shock_rows = []
    for regime in (TOP_DOWN_LAW, SELF_REGULATION, CO_REGULATION):
        shock_rows.append({
            "regime": regime.name,
            "mean_gap_with_disruption": round(
                mean_gap(regime, 0.2, shock_at=100), 3
            ),
        })
    return rows, shock_rows


def test_a03_coregulation(benchmark):
    rows, shock_rows = run_once(benchmark, run_experiment)
    print("\nA03: mean regulation gap by regime and environment speed")
    print(render_table(rows))
    print("\nA03: gap with a disruptive innovation at t=100")
    print(render_table(shock_rows))

    def gap(env, name):
        return next(
            r["mean_regulation_gap"] for r in rows
            if r["environment"] == env and r["regime"] == name
        )

    for env in ("slow-drift", "fast-drift"):
        # co-regulation beats both alternatives
        assert gap(env, "co-regulation") < gap(env, "top-down-law")
        assert gap(env, "co-regulation") < gap(env, "self-regulation")
    # rigidity hurts *more* when the environment moves fast (the paper's
    # Internet-services point): the law's relative penalty grows
    slow_ratio = gap("slow-drift", "top-down-law") / gap("slow-drift",
                                                         "co-regulation")
    fast_ratio = gap("fast-drift", "top-down-law") / gap("fast-drift",
                                                         "co-regulation")
    assert fast_ratio >= slow_ratio * 0.8  # at least comparable, usually worse
    shock_gaps = {r["regime"]: r["mean_gap_with_disruption"]
                  for r in shock_rows}
    assert shock_gaps["co-regulation"] < shock_gaps["top-down-law"]
