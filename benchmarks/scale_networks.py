#!/usr/bin/env python
"""Network-engine scale axis: one percolation curve + one SIR run vs n.

Each point builds an Erdős–Rényi graph of mean degree
:data:`MEAN_DEGREE` from the streaming generator (never materializing a
Python edge list), runs one targeted-attack percolation curve and one
SIR epidemic on it, and records wall times plus the process's peak RSS.

Every point runs in its **own subprocess** (``--engine/--n`` CLI below):
``ru_maxrss`` is a process-wide high-water mark, so points sharing a
process would inherit each other's peaks — a fresh interpreter per
point is the only honest way to attribute memory.  The mmap points run
under a :class:`~repro.runtime.supervisor.Supervisor` memory budget of
:data:`SCALE_BUDGET_MB`, so the out-of-core acceptance criterion
("10^6-node percolation + SIR under a 512 MB budget") is checked by the
benchmark itself, not just claimed.

Engines cover the axis up to their practical envelope
(:data:`SCALE_CAP`): the object engine's per-node Python structures
stop at 10^4, the in-RAM array engine at 10^5, and the memory-mapped
engine streams the full axis to 4·10^6 nodes.  ``smoke=True`` shrinks
the axis (and caps) by ~three orders of magnitude so CI exercises every
code path in seconds.

Used by ``run_benchmarks.py --scale-networks`` (which embeds the axis
in the schema-3 ``BENCH_networks.json`` snapshot); also runnable
standalone::

    PYTHONPATH=../src python scale_networks.py --engine mmap \
        --n 1000000 --budget-mb 512
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import subprocess
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.abspath(os.path.join(HERE, "..", "src"))

#: full scale axis (nodes) and the smoke-mode miniature of it
SCALE_NS = (10_000, 100_000, 1_000_000, 4_000_000)
SCALE_NS_SMOKE = (300, 1_000, 3_000)
#: largest n each engine is asked to run — the object engine's boxed
#: adjacency and the array engine's in-RAM CSR both have practical
#: ceilings; only the mmap engine covers the full axis
SCALE_CAP = {"object": 10_000, "array": 100_000, "mmap": 4_000_000}
SCALE_CAP_SMOKE = {"object": 300, "array": 1_000, "mmap": 3_000}

#: ER mean degree — every point uses p = MEAN_DEGREE / (n - 1), well
#: above the giant-component threshold so percolation and SIR both see
#: a connected bulk
MEAN_DEGREE = 10.0
#: supervisor memory budget (MB) installed for the mmap points
SCALE_BUDGET_MB = 512
#: measured percolation points per curve (evenly spaced removals)
RESOLUTION = 64
SEED = 93
SIR_BETA = 0.2
SIR_GAMMA = 0.1
#: target edges per streamed chunk when the gap method is in play
_TARGET_CHUNK_EDGES = 500_000


def _edge_stream(n: int, p: float, seed: int):
    """ER edge chunks sized so gap-mode yields ~5·10^5 edges each.

    The gap method's per-yield cost is O(edges in the chunk), so the
    default ``chunk_pairs`` (tuned for exact mode) would emit tiny
    chunks at 10^6+ nodes — scale ``chunk_pairs`` by 1/p instead.
    """
    from repro.networks.generators import (
        ER_EXACT_MAX_PAIRS,
        erdos_renyi_stream,
    )

    n_pairs = n * (n - 1) // 2
    if n_pairs <= ER_EXACT_MAX_PAIRS:
        return erdos_renyi_stream(n, p, seed=seed, chunk_pairs=1 << 22)
    chunk_pairs = max(1 << 22, int(_TARGET_CHUNK_EDGES / p))
    return erdos_renyi_stream(
        n, p, seed=seed, chunk_pairs=chunk_pairs, method="gap"
    )


def run_point(
    engine: str,
    n: int,
    seed: int = SEED,
    budget_mb: float | None = None,
) -> dict:
    """Build the graph, time percolation + SIR, report peak RSS (MB)."""
    import resource

    import numpy as np

    from repro.networks.attacks import TargetedDegreeAttack
    from repro.networks.epidemics import SIRModel
    from repro.networks.mmapgraph import MmapGraph
    from repro.networks.percolation import (
        critical_fraction,
        percolation_curve,
    )
    from repro.runtime import supervisor

    p = MEAN_DEGREE / (n - 1)
    start = time.perf_counter()
    mg = MmapGraph.from_edge_chunks(
        n, _edge_stream(n, p, seed), check_duplicates=False
    )
    if engine == "mmap":
        g = mg
    elif engine == "array":
        # np.array() forces in-RAM copies — ascontiguousarray would keep
        # the disk-backed memmaps and silently benchmark mmap I/O
        from repro.networks.arraygraph import ArrayGraph

        g = ArrayGraph(np.array(mg.indptr), np.array(mg.indices))
    else:
        g = mg.to_graph()
    build_s = time.perf_counter() - start

    budget_ctx = (
        supervisor.use(supervisor.Supervisor(memory_budget_mb=budget_mb))
        if budget_mb is not None
        else contextlib.nullcontext()
    )
    with budget_ctx:
        start = time.perf_counter()
        curve = percolation_curve(
            g, TargetedDegreeAttack(), seed=seed,
            resolution=RESOLUTION, engine=engine,
        )
        percolation_s = time.perf_counter() - start

        model = SIRModel(g, beta=SIR_BETA, gamma=SIR_GAMMA, engine=engine)
        start = time.perf_counter()
        result = model.run([0], max_steps=200, seed=seed)
        sir_s = time.perf_counter() - start

    # ru_maxrss is KB on Linux; the subprocess-per-point protocol makes
    # this the honest peak for exactly this build + these two kernels
    max_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "engine": engine,
        "n": n,
        "n_edges": mg.n_edges,
        "build_s": round(build_s, 4),
        "percolation_s": round(percolation_s, 4),
        "sir_s": round(sir_s, 4),
        "max_rss_mb": round(max_rss_mb, 1),
        "budget_mb": budget_mb,
        # sanity landmarks, pinned loosely by the tier-2 test
        "giant_fraction_0": round(float(curve.giant_fraction[0]), 4),
        "critical_fraction": round(critical_fraction(curve), 4),
        "sir_ever_fraction": round(result.total_ever_infected / n, 4),
    }


def time_network_scale(
    smoke: bool = False, budget_mb: float = SCALE_BUDGET_MB
) -> dict:
    """Run the axis, one subprocess per (n, engine) point.

    Returns ``{str(n): {engine: point-dict}}`` — the ``scale_ns`` extra
    of the schema-3 network snapshot.  Points past an engine's cap are
    simply absent, so n >= 10^6 carries mmap-only columns.
    """
    ns = SCALE_NS_SMOKE if smoke else SCALE_NS
    caps = SCALE_CAP_SMOKE if smoke else SCALE_CAP
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    axis: dict = {}
    for n in ns:
        axis[str(n)] = {}
        for engine in ("object", "array", "mmap"):
            if n > caps[engine]:
                continue
            cmd = [
                sys.executable, os.path.abspath(__file__),
                "--engine", engine, "--n", str(n), "--seed", str(SEED),
            ]
            if engine == "mmap":
                cmd += ["--budget-mb", str(budget_mb)]
            proc = subprocess.run(
                cmd, env=env, capture_output=True, text=True
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"scale point n={n} engine={engine} failed:\n"
                    f"{proc.stderr}"
                )
            point = json.loads(proc.stdout.strip().splitlines()[-1])
            axis[str(n)][engine] = point
            print(
                f"net scale n={n:<9d} {engine:8s} "
                f"build {point['build_s']:8.3f} s  "
                f"perc {point['percolation_s']:8.3f} s  "
                f"sir {point['sir_s']:7.3f} s  "
                f"rss {point['max_rss_mb']:7.1f} MB"
            )
    return axis


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", required=True,
                        choices=("object", "array", "mmap"))
    parser.add_argument("--n", type=int, required=True)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--budget-mb", type=float, default=None)
    args = parser.parse_args(argv)
    point = run_point(
        args.engine, args.n, seed=args.seed, budget_mb=args.budget_mb
    )
    print(json.dumps(point))
    return 0


if __name__ == "__main__":
    sys.path.insert(0, SRC)
    raise SystemExit(main())
