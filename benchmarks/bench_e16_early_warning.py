"""E16 — Early-warning signals before a tipping point (paper §3.4.1).

Claim (Scheffer et al., as relayed): "for any dynamical systems there
could be early-warning signals that indicate the system is near a
tipping point."  We regenerate the detection study: rolling variance and
lag-1 autocorrelation trends on pre-tip windows of saddle-node ramps vs
matched stationary controls, with warning rate / false-alarm rate.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.anticipation.earlywarning import compute_indicators, warning_verdict
from repro.anticipation.tipping import SaddleNodeSystem

WINDOW = 800
TAU = 0.3
TRIALS = 12


def analyse(series):
    data = series.pre_tip(margin=100)
    data = data[-5000:]
    ind = compute_indicators(data, window=WINDOW)
    return ind


def run_experiment():
    system = SaddleNodeSystem(noise=0.06, dt=0.05)
    ramp_hits, ramp_var, ramp_ac = 0, [], []
    control_hits, control_var, control_ac = 0, [], []
    for trial in range(TRIALS):
        ramp = system.ramp_to_tipping(
            20_000, a_start=-0.5, a_end=0.45, seed=trial
        )
        if not ramp.tipped or (ramp.tip_index or 0) < 6000:
            continue
        ind = analyse(ramp)
        ramp_hits += warning_verdict(ind, tau_threshold=TAU)
        ramp_var.append(ind.variance_trend)
        ramp_ac.append(ind.autocorrelation_trend)

        control = system.stationary_control(20_000, a=-0.45,
                                            seed=1000 + trial)
        ind_c = analyse(control)
        control_hits += warning_verdict(ind_c, tau_threshold=TAU)
        control_var.append(ind_c.variance_trend)
        control_ac.append(ind_c.autocorrelation_trend)
    n = len(ramp_var)
    rows = [
        {
            "condition": "ramp-to-tipping",
            "n_series": n,
            "warning_rate": round(ramp_hits / n, 3),
            "mean_var_trend": round(float(np.mean(ramp_var)), 3),
            "mean_ac_trend": round(float(np.mean(ramp_ac)), 3),
        },
        {
            "condition": "stationary-control",
            "n_series": n,
            "warning_rate": round(control_hits / n, 3),
            "mean_var_trend": round(float(np.mean(control_var)), 3),
            "mean_ac_trend": round(float(np.mean(control_ac)), 3),
        },
    ]
    return rows


def test_e16_early_warning(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE16: early-warning detection before saddle-node tipping")
    print(render_table(rows))
    ramp, control = rows
    assert ramp["n_series"] >= 8
    # warnings fire before tipping far more often than on controls
    assert ramp["warning_rate"] > control["warning_rate"] + 0.3
    # the indicator trends themselves separate the conditions
    assert ramp["mean_var_trend"] > control["mean_var_trend"] + 0.2
    assert ramp["mean_ac_trend"] > control["mean_ac_trend"] + 0.2
