"""A02 (ablation) — Excess generation capacity (paper §3.1.2).

Claim: after 3.11 "every one of Japan's 50 nuclear power stations went
into maintenance cycles ... Japan has never experienced major blackout
during this period ... Japanese electricity systems have had a huge
excessive capacity."  We regenerate the adequacy table: blackout
probability after a full nuclear shutdown, as a function of the
pre-event capacity margin.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.redundancy.capacity import GenerationFleet, PlantClass

DEMAND = 60.0


def fleet_with_margin(extra_thermal: int) -> GenerationFleet:
    return GenerationFleet([
        PlantClass("nuclear", count=10, unit_capacity=3.0, outage_p=0.02),
        PlantClass("thermal", count=30 + extra_thermal, unit_capacity=2.0,
                   outage_p=0.05),
    ])


def run_experiment():
    rows = []
    for extra in (0, 5, 10, 20):
        fleet = fleet_with_margin(extra)
        margin = fleet.margin_over(DEMAND)
        before = fleet.simulate_adequacy(DEMAND, 4.0, periods=600, seed=3)
        after = fleet.without_class("nuclear").simulate_adequacy(
            DEMAND, 4.0, periods=600, seed=3
        )
        rows.append({
            "capacity_margin": round(margin, 3),
            "blackout_p_normal": round(before.blackout_probability, 4),
            "blackout_p_after_nuclear_shutdown": round(
                after.blackout_probability, 4
            ),
            "installed": fleet.installed_capacity,
            "lost_share": round(30.0 / fleet.installed_capacity, 3),
        })
    return rows


def test_a02_capacity_margin(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nA02: surviving a ~30% correlated capacity loss vs margin")
    print(render_table(rows))
    after = [row["blackout_p_after_nuclear_shutdown"] for row in rows]
    # blackout risk falls monotonically with the margin
    assert all(b <= a + 1e-9 for a, b in zip(after, after[1:]))
    # a thin margin cannot absorb the shutdown; a huge one can (the paper)
    assert after[0] > 0.3
    assert after[-1] < 0.02
    # normal operation is fine at every margin (margins pay off in crisis)
    assert all(row["blackout_p_normal"] < 0.05 for row in rows)
