"""E04 — Diversity Index extremes (paper §3.2.4).

Claim: G = (Σ p_i²/N)^-1 "takes the largest value 1/p² when all the
species have exactly the same size" and "is the smallest when one
species dominates ... 1/(p²N)".  We regenerate G along a
monopolization path from perfectly even to fully dominated and check
both analytic endpoints and monotone decline.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.dynamics.diversity import inverse_simpson, maruyama_diversity_index


def run_experiment():
    n, p = 10, 5.0
    rows = []
    for dominance in np.linspace(0.0, 1.0, 11):
        # move a `dominance` share of everyone's population to species 0
        pops = np.full(n, p)
        transfer = dominance * p * (n - 1)
        pops[1:] -= dominance * p
        pops[0] += transfer
        rows.append({
            "dominance": round(float(dominance), 2),
            "G": maruyama_diversity_index(pops),
            "effective_species": round(inverse_simpson(np.maximum(pops, 1e-12)), 3),
        })
    return n, p, rows


def test_e04_diversity_index(benchmark):
    n, p, rows = run_once(benchmark, run_experiment)
    print("\nE04: diversity index G along the monopolization path")
    print(render_table(rows))
    # paper's analytic endpoints
    assert rows[0]["G"] == 1.0 / p**2
    assert rows[-1]["G"] == 1.0 / (n * p**2)
    # G declines monotonically as one species takes over
    gs = [row["G"] for row in rows]
    assert all(a >= b - 1e-12 for a, b in zip(gs, gs[1:]))
    # effective species falls from N to 1
    assert rows[0]["effective_species"] == n
    assert rows[-1]["effective_species"] == 1.0
