"""A08 (ablation) — How smart must the attacker be? (paper §5.1)

The robust-yet-fragile asymmetry grows with attacker knowledge: random
failure < static degree targeting < adaptive degree targeting <
betweenness targeting.  This ablation ranks the whole attack family on
one scale-free network, quantifying the marginal value of each increment
of attacker intelligence — the defender's threat model, measured.
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.analysis.tables import render_table
from repro.networks.attacks import (
    AdaptiveDegreeAttack,
    RandomFailure,
    TargetedDegreeAttack,
)
from repro.networks.centrality import BetweennessAttack
from repro.networks.generators import barabasi_albert
from repro.networks.percolation import critical_fraction, percolation_curve

N = scaled(500, 80)


def setup():
    """Generate the substrate network outside the timed region."""
    return barabasi_albert(N, 2, seed=10)


def run_experiment(g=None):
    if g is None:
        g = setup()
    rows = []
    for label, attack in (
        ("random-failure", RandomFailure()),
        ("degree-static", TargetedDegreeAttack()),
        ("degree-adaptive", AdaptiveDegreeAttack()),
        ("betweenness-static", BetweennessAttack()),
    ):
        curve = percolation_curve(g, attack, seed=11, resolution=50)
        rows.append({
            "attack": label,
            "critical_fraction": round(critical_fraction(curve, 0.05), 3),
            "robustness_index": round(curve.robustness_index(), 4),
            "giant_at_10pct": round(curve.giant_at(0.10), 3),
        })
    return rows


def test_a08_attack_family(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nA08: attacker intelligence vs damage on BA(500, m=2)")
    print(render_table(rows))
    by = {row["attack"]: row for row in rows}
    # every informed attack beats random failure decisively
    for informed in ("degree-static", "degree-adaptive",
                     "betweenness-static"):
        assert by[informed]["critical_fraction"] < \
            by["random-failure"]["critical_fraction"] / 2
    # adaptivity and mediation-awareness help (weakly, at minimum)
    assert by["degree-adaptive"]["robustness_index"] <= \
        by["degree-static"]["robustness_index"] + 0.01
    assert by["betweenness-static"]["robustness_index"] <= \
        by["degree-static"]["robustness_index"] + 0.01
