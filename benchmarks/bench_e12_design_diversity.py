"""E12 — Design diversity in a triplex computer (paper §3.2.2).

Claim: the Boeing 777's three flight computers are "based on different
hardware and software developed by independent vendors.  If these three
computers share the same design, a design flaw would make all the
computers fail at the same time."  We regenerate the failure-probability
table across the design-flaw rate: identical triplex fails at roughly the
flaw rate; the diverse triplex is orders of magnitude safer in the
flaw-dominated regime.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.redundancy.nversion import (
    RedundantComputer,
    simulate_failures,
    system_failure_probability,
)

P_INDEPENDENT = 1e-4


def run_experiment():
    rows = []
    for p_design in (1e-3, 1e-2, 5e-2):
        identical = RedundantComputer.identical_triplex(
            P_INDEPENDENT, p_design
        )
        diverse = RedundantComputer.diverse_triplex(P_INDEPENDENT, p_design)
        p_identical = system_failure_probability(identical)
        p_diverse = system_failure_probability(diverse)
        rows.append({
            "p_design_flaw": p_design,
            "p_fail_identical": p_identical,
            "p_fail_diverse": p_diverse,
            "improvement_factor": round(p_identical / p_diverse, 1),
            "mc_estimate_diverse": simulate_failures(
                diverse, trials=200_000, seed=3
            ),
        })
    return rows


def test_e12_design_diversity(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE12: identical vs design-diverse triplex (2-of-3 voting)")
    print(render_table(rows))
    for row in rows:
        # identical triplex inherits the full common-mode flaw rate
        assert row["p_fail_identical"] > 0.9 * row["p_design_flaw"]
        # design diversity improves failure probability substantially;
        # the gain grows as the flaw rate shrinks (~1/(3 p_design))
        assert row["improvement_factor"] > 5
        # Monte-Carlo agrees with the exact enumeration
        assert abs(row["mc_estimate_diverse"] - row["p_fail_diverse"]) < \
            5e-3 * (1 + row["p_fail_diverse"] * 100)
    assert rows[0]["improvement_factor"] > 100
