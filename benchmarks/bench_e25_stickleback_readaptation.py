"""E25 — Stickleback re-adaptation from dormant variation (paper §3.1.1).

Claim: three-spine sticklebacks lost their armor plates in fresh water
but "regained armor plates because of the predation pressure by trouts";
"the genotype of the armor plates was dormant (and thus, redundant)
during the peaceful years but became active when the necessity arose."

Model: a population of bit-string genomes with armor loci.  In the
peaceful era armor is selectively neutral (dormant), so the armor
genotype erodes only by drift and mutation; when predation returns the
loci awaken under strong selection.  We regenerate the armor time course
for peaceful eras of different lengths: standing variation erodes with
peace, yet re-adaptation succeeds — the dormant-redundancy mechanism.

The population lives as a (POP × GENOME) uint8 matrix (the
``csp.bitstring`` bulk-converter layout): one generation is a batched
fitness-proportional choice plus one binomial mutation mask, not a
per-organism mutate loop.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, scaled

from repro.analysis.tables import render_table
from repro.dynamics.mutation import BitFlipMutator, TraitArchitecture
from repro.rng import make_rng

GENOME = 20
ARMOR = tuple(range(10, 16))  # six armor loci, dormant in peace
POP = 80
MUTATION = BitFlipMutator(0.01)
PEACE_ERAS = scaled((0, 40, 160), smoke=(0, 40))
WAR_GENERATIONS = scaled(120, smoke=40)


def mean_armor(population: np.ndarray) -> float:
    return float(population[:, ARMOR].sum(axis=1).mean())


def evolve(population, arch, generations, selection_strength, rng):
    """Fitness-proportional reproduction with per-locus mutation."""
    active = np.asarray(arch.active_loci, dtype=int)
    for _ in range(generations):
        scores = 1.0 + selection_strength * population[:, active].sum(axis=1)
        probs = scores / scores.sum()
        children_idx = rng.choice(len(population), size=POP, p=probs)
        mutated = rng.random((POP, GENOME)) < MUTATION.rate
        population = population[children_idx] ^ mutated.astype(np.uint8)
    return population


def run_experiment():
    peace_arch = TraitArchitecture(
        n=GENOME, active_loci=tuple(range(0, 10)), dormant_loci=ARMOR
    )
    war_arch = peace_arch.awaken()
    rows = []
    for peace_generations in PEACE_ERAS:
        rng = make_rng(peace_generations + 5)
        population = np.ones((POP, GENOME), dtype=np.uint8)
        # peaceful era: armor dormant, only the body loci are selected
        population = evolve(
            population, peace_arch, peace_generations,
            selection_strength=0.05, rng=rng,
        )
        standing = mean_armor(population)
        # predation returns: armor loci awaken under strong selection
        population = evolve(
            population, war_arch, WAR_GENERATIONS,
            selection_strength=0.15, rng=rng,
        )
        rows.append({
            "peace_generations": peace_generations,
            "standing_armor_before_predation": round(standing, 2),
            "armor_after_120_gens_of_predation": round(
                mean_armor(population), 2
            ),
            "max_armor": len(ARMOR),
        })
    return rows


def test_e25_stickleback_readaptation(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE25: dormant armor variation and re-adaptation under predation")
    print(render_table(rows))
    # standing variation erodes with the length of the peaceful era
    standing = [row["standing_armor_before_predation"] for row in rows]
    assert all(a >= b - 0.3 for a, b in zip(standing, standing[1:]))
    assert standing[0] > standing[-1]
    # but re-adaptation succeeds whenever variation/mutation remains:
    # armor returns under renewed predation
    for row in rows:
        assert row["armor_after_120_gens_of_predation"] > \
            0.6 * row["max_armor"]
    # after a long peaceful era, renewed predation *rebuilds* armor well
    # above the eroded standing level (the 1957 -> 2006 reversal)
    eroded = rows[-1]
    assert eroded["armor_after_120_gens_of_predation"] > \
        eroded["standing_armor_before_predation"] + 1.0
    # every population converges to a similar selection-mutation balance
    finals = [row["armor_after_120_gens_of_predation"] for row in rows]
    assert max(finals) - min(finals) < 1.0
