"""E02 — Spacecraft k-recoverability (paper Fig. 4 + §4.2 example).

Claim: with constraint C = 1^n, debris failing at most k components, and
one repair per step, the spacecraft is exactly k-recoverable; faster
repair divides the bound.  We regenerate the full phase table of minimal
k over (n, debris hits, repairs/step).

Engine-aware: the CSP kernels honour ``REPRO_CSP_ENGINE`` (object vs
compiled bit-matrix), so ``run_benchmarks.py`` times both columns of the
same table.  The grid is sized so the object column is well into
measurable territory (n = 14 enumerates 16384 configurations per CSP).
"""

from __future__ import annotations

import math

from conftest import run_once, scaled

from repro.analysis.tables import render_table
from repro.spacecraft.system import Spacecraft

COMPONENTS = scaled((6, 10, 14), (4, 6))
HITS = scaled((1, 2, 3, 4), (1, 2))
REPAIRS = (1, 2)


def run_experiment():
    rows = []
    for n in COMPONENTS:
        for hits in HITS:
            for repairs in REPAIRS:
                craft = Spacecraft(n, repairs_per_step=repairs)
                rows.append({
                    "n_components": n,
                    "max_debris_hits": hits,
                    "repairs_per_step": repairs,
                    "minimal_k": craft.minimal_k(hits),
                    "is_k_recoverable_at_k": craft.is_k_recoverable(
                        hits, math.ceil(hits / repairs)
                    ),
                })
    return rows


def test_e02_spacecraft_recoverability(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE02: minimal k for the paper's spacecraft example")
    print(render_table(rows))
    for row in rows:
        expected = math.ceil(
            min(row["max_debris_hits"], row["n_components"])
            / row["repairs_per_step"]
        )
        assert row["minimal_k"] == expected
        assert row["is_k_recoverable_at_k"]
