"""E20 — Self-organized criticality and cascade containment (paper §4.5).

Claims: (a) "many decentralized systems ... naturally reach a critical
state with minimum stability without carefully choosing initial system
parameters and a small disturbance ... could cause cascading failures"
— the BTW sandpile's avalanche sizes follow a power law with no tuning;
(b) "to modularize a large system into smaller independent components
seems to be a good design principle in order to contain a damage" —
sparse inter-module bridges statistically contain probabilistic
cascades.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.networks.cascades import ProbabilisticCascadeModel, modular_graph
from repro.soc.avalanche import fit_power_law
from repro.soc.sandpile import Sandpile


def run_experiment():
    # (a) sandpile avalanche statistics from three arbitrary initial states
    soc_rows = []
    for seed in (0, 1, 2):
        pile = Sandpile(25)
        avalanches = pile.drive(6000, seed=seed, warmup=6000)
        sizes = [a.size for a in avalanches if a.size > 0]
        fit = fit_power_law(sizes, n_bins=14)
        soc_rows.append({
            "seed": seed,
            "n_avalanches": len(sizes),
            "max_size": max(sizes),
            "fitted_exponent": round(fit.exponent, 2),
            "r_squared": round(fit.r_squared, 3),
            "power_law_like": fit.looks_power_law(min_r2=0.8,
                                                  exponent_range=(0.7, 2.5)),
        })

    # (b) modularization ablation over bridge density
    total = 60
    cascade_rows = []
    for label, graph in (
        ("monolith", modular_graph(1, total, intra_p=0.12, bridges=0, seed=3)),
        ("5 modules, 4 bridges",
         modular_graph(5, total // 5, intra_p=0.6, bridges=4, seed=3)),
        ("5 modules, 1 bridge",
         modular_graph(5, total // 5, intra_p=0.6, bridges=1, seed=3)),
    ):
        model = ProbabilisticCascadeModel(graph, spread_p=0.5)
        damage = model.mean_damage(trials=120, seed=4)
        cascade_rows.append({
            "topology": label,
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "mean_damage_fraction": round(damage, 3),
        })
    return soc_rows, cascade_rows


def test_e20_soc_sandpile(benchmark):
    soc_rows, cascade_rows = run_once(benchmark, run_experiment)
    print("\nE20a: BTW sandpile avalanche-size distribution")
    print(render_table(soc_rows))
    print("\nE20b: cascade containment by modularization")
    print(render_table(cascade_rows))
    # (a) criticality without tuning, from any seed
    for row in soc_rows:
        assert row["power_law_like"]
        assert row["max_size"] > 100  # occasional large disasters
    # (b) fewer bridges => better containment
    damages = [row["mean_damage_fraction"] for row in cascade_rows]
    assert damages[0] > damages[1] > damages[2]
    assert damages[0] > 2 * damages[2]
