"""E07 — Diversity improves survival chances (paper §3.2.4, §3.2.1).

Claim: "One of the reasons that the biological systems as a whole
survived [the Permian–Triassic extinction] is because of their diversity
– some species had better capability to deal with changing
environments" and "a diverse ecosystem has better chances to survive in
various conditions."

Model: each species carries a fixed environmental trait in [0, 1).  A
sequence of extinction shocks each draws a random demand; species whose
trait is farther than ``tolerance`` from the demand die.  Between
shocks the survivors repopulate under replicator dynamics with
diminishing-return density dependence.  The ecosystem survives iff any
species remains at the end.  Initial diversity = how many distinct
species hold population.

All trials of one diversity level run as a single batched (trials ×
species) matrix — the replicator repopulation applies row-wise, so no
per-episode Python loop remains.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, scaled

from repro.analysis.tables import render_table
from repro.dynamics.fitness import PowerDensityDependence
from repro.rng import make_rng

N_SPECIES = 8
TOLERANCE = 0.3  # a lone species survives one shock w.p. ~0.6
N_SHOCKS = 3
TOTAL = 800.0
DENSITY = PowerDensityDependence(2.0)


def circular_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    d = np.abs(a - b) % 1.0
    return np.minimum(d, 1.0 - d)


def repopulate(pops: np.ndarray, steps: int = 20) -> np.ndarray:
    """Row-wise replicator dynamics with density-dependent fitness.

    The batched form of ``ReplicatorSystem(np.ones(S), density=...)``:
    every row is one ecosystem; extinct rows (all zero) pass through
    unchanged.
    """
    pops = pops.copy()
    alive = pops.sum(axis=1) > 0
    live = pops[alive]
    for _ in range(steps):
        totals = live.sum(axis=1, keepdims=True)
        fitness = DENSITY.factor(live / totals)
        mean_fitness = (live * fitness).sum(axis=1, keepdims=True) / totals
        live = live * fitness / mean_fitness
    pops[alive] = live / live.sum(axis=1, keepdims=True) * TOTAL
    return pops


def run_trials(n_present: int, trials: int, rng) -> float:
    traits = rng.random((trials, N_SPECIES))
    pops = np.zeros((trials, N_SPECIES))
    pops[:, :n_present] = TOTAL / n_present
    for _ in range(N_SHOCKS):
        demand = rng.random((trials, 1))
        pops[circular_distance(traits, demand) > TOLERANCE] = 0.0
        # survivors repopulate (diminishing-return keeps them coexisting)
        pops = repopulate(pops)
    return float(np.mean(pops.sum(axis=1) > 0))


def run_experiment():
    rng = make_rng(2024)
    trials = scaled(250, smoke=40)
    rows = []
    for n_present in (1, 2, 4, 8):
        rows.append({
            "initial_species": n_present,
            "survival_rate": run_trials(n_present, trials, rng),
            "lone_species_theory": round(
                1 - (1 - (2 * TOLERANCE) ** N_SHOCKS) ** n_present, 3
            ),
        })
    return rows


def test_e07_diversity_survival(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE07: ecosystem survival vs initial species diversity")
    print(render_table(rows))
    rates = [row["survival_rate"] for row in rows]
    # monotone gain from diversity, large overall differential
    assert all(b >= a - 0.05 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > rates[0] + 0.3
    # the independence approximation tracks the simulation loosely
    for row in rows:
        assert abs(row["survival_rate"] - row["lone_species_theory"]) < 0.25
