"""E07 — Diversity improves survival chances (paper §3.2.4, §3.2.1).

Claim: "One of the reasons that the biological systems as a whole
survived [the Permian–Triassic extinction] is because of their diversity
– some species had better capability to deal with changing
environments" and "a diverse ecosystem has better chances to survive in
various conditions."

Model: each species carries a fixed environmental trait in [0, 1).  A
sequence of extinction shocks each draws a random demand; species whose
trait is farther than ``tolerance`` from the demand die.  Between
shocks the survivors repopulate under replicator dynamics with
diminishing-return density dependence.  The ecosystem survives iff any
species remains at the end.  Initial diversity = how many distinct
species hold population.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.dynamics.fitness import PowerDensityDependence
from repro.dynamics.replicator import ReplicatorSystem
from repro.rng import make_rng

N_SPECIES = 8
TOLERANCE = 0.3  # a lone species survives one shock w.p. ~0.6
N_SHOCKS = 3
TOTAL = 800.0


def circular_distance(a: float, b: float) -> float:
    d = abs(a - b) % 1.0
    return min(d, 1.0 - d)


def run_episode(n_present: int, rng) -> bool:
    traits = rng.random(N_SPECIES)
    pops = np.zeros(N_SPECIES)
    pops[:n_present] = TOTAL / n_present
    for _ in range(N_SHOCKS):
        demand = rng.random()
        for i in range(N_SPECIES):
            if circular_distance(traits[i], demand) > TOLERANCE:
                pops[i] = 0.0
        if not np.any(pops > 0):
            return False
        # survivors repopulate (diminishing-return keeps them coexisting)
        system = ReplicatorSystem(
            np.ones(N_SPECIES), density=PowerDensityDependence(2.0)
        )
        pops = system.run(pops, steps=20).final
        pops = pops / pops.sum() * TOTAL
    return True


def run_experiment():
    rng = make_rng(2024)
    trials = 250
    rows = []
    for n_present in (1, 2, 4, 8):
        survived = sum(run_episode(n_present, rng) for _ in range(trials))
        rows.append({
            "initial_species": n_present,
            "survival_rate": survived / trials,
            "lone_species_theory": round(
                1 - (1 - (2 * TOLERANCE) ** N_SHOCKS) ** n_present, 3
            ),
        })
    return rows


def test_e07_diversity_survival(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE07: ecosystem survival vs initial species diversity")
    print(render_table(rows))
    rates = [row["survival_rate"] for row in rows]
    # monotone gain from diversity, large overall differential
    assert all(b >= a - 0.05 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > rates[0] + 0.3
    # the independence approximation tracks the simulation loosely
    for row in rows:
        assert abs(row["survival_rate"] - row["lone_species_theory"]) < 0.25
