"""A01 (ablation) — The sea-wall design-envelope problem (paper §3.4.6).

The paper: the Fukushima wall was 5.7 m, the tsunami 14 m, the Meiji
Sanriku record 40 m — "It is not practical to build such a high sea
wall."  We regenerate the economics: return levels grow without bound
under a power-law magnitude law, build costs grow superlinearly, so the
optimal wall is finite, sits far below the historical maximum, and
leaves residual X-event risk — the quantitative case for pairing a
finite envelope with mode switching.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.shocks.distributions import ParetoMagnitudes
from repro.shocks.envelope import DesignProblem, design_height_for_return_period


def run_experiment():
    magnitudes = ParetoMagnitudes(alpha=1.8, xmin=1.0)
    # return levels: how high is the once-in-T-years event?
    levels = [
        {
            "return_period_years": years,
            "design_height": round(
                design_height_for_return_period(magnitudes, 0.2, years), 2
            ),
        }
        for years in (10, 100, 1000, 10_000)
    ]
    problem = DesignProblem(
        magnitudes=magnitudes,
        events_per_year=0.2,
        horizon_years=100.0,
        build_cost_per_unit=2.0,
        build_cost_exponent=1.5,
        breach_loss=500.0,
    )
    grid = np.linspace(1.0, 40.0, 118)
    rows = []
    for height in (2.0, 5.7, 14.0, 40.0):
        e = problem.evaluate(height)
        rows.append({
            "wall_height": height,
            "build_cost": round(e.build_cost, 1),
            "expected_breach_loss": round(e.expected_breach_loss, 1),
            "total_cost": round(e.total_cost, 1),
            "breach_probability": round(e.breach_probability, 4),
        })
    best = problem.optimize(grid)
    rows.append({
        "wall_height": round(best.height, 2),
        "build_cost": round(best.build_cost, 1),
        "expected_breach_loss": round(best.expected_breach_loss, 1),
        "total_cost": round(best.total_cost, 1),
        "breach_probability": round(best.breach_probability, 4),
    })
    return levels, rows, best


def test_a01_seawall_design(benchmark):
    levels, rows, best = run_once(benchmark, run_experiment)
    print("\nA01: return levels under Pareto(1.8) magnitudes")
    print(render_table(levels))
    print("\nA01: wall-height economics (last row = optimum)")
    print(render_table(rows))
    # return levels keep growing — no finite envelope covers everything
    heights = [r["design_height"] for r in levels]
    assert heights == sorted(heights)
    assert heights[-1] > 3 * heights[0]
    # the optimum is interior: cheaper than both the historic-max wall
    # and the under-built wall
    by_height = {r["wall_height"]: r for r in rows}
    assert best.total_cost < by_height[40.0]["total_cost"]
    assert best.total_cost < by_height[2.0]["total_cost"]
    assert 2.0 < best.height < 40.0
    # and residual risk remains (the paper's X-event inevitability)
    assert best.breach_probability > 0.0
