"""E05 — Replicator domination (paper §3.2.4).

Claim: "the population of a fit species will get larger by each
generation, and the most fit species will ultimately dominate the entire
ecosystem without a mechanism that penalizes such domination."  We
regenerate the domination time course and its dependence on the fitness
advantage.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.dynamics.replicator import ReplicatorSystem


def run_experiment():
    rows = []
    for advantage in (0.02, 0.05, 0.10, 0.20):
        fitness = [1.0, 1.0, 1.0, 1.0 + advantage]
        system = ReplicatorSystem(fitness)
        traj = system.run([100.0] * 4, steps=800)
        dominant = traj.dominant_share()
        crossing = next(
            (t for t, share in enumerate(dominant) if share > 0.99),
            None,
        )
        rows.append({
            "fitness_advantage": advantage,
            "final_dominant_share": round(float(dominant[-1]), 4),
            "generations_to_99pct": crossing,
            "final_G": float(traj.diversity_series()[-1]),
            "initial_G": float(traj.diversity_series()[0]),
        })
    return rows


def test_e05_replicator_domination(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE05: replicator equation drives domination (no penalty)")
    print(render_table(rows))
    for row in rows:
        assert row["final_dominant_share"] > 0.98
        assert row["final_G"] < row["initial_G"] / 2
    # larger advantage dominates faster
    times = [row["generations_to_99pct"] for row in rows]
    assert all(t is not None for t in times)
    assert all(a > b for a, b in zip(times, times[1:]))
