"""E06 — Concave fitness preserves diversity (paper Fig. 2 + §3.2.4).

Claims: (a) with a density-dependent *decreasing* fitness ("the
dominating species loses its advantage as its population increases ...
this gives spaces for other species") the replicator dynamics keep
multiple species alive, while the raw linear regime collapses to
monoculture; (b) under a concave (diminishing-return) trait fitness,
slightly deleterious variants are effectively neutral near saturation
(Akashi's weak-selection argument), so they persist in a drift model.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.dynamics.drift import MoranModel
from repro.dynamics.fitness import (
    ConcaveFitness,
    LinearFitness,
    PowerDensityDependence,
    selection_coefficient,
)
from repro.dynamics.replicator import ReplicatorSystem


def run_experiment():
    # (a) ecosystem level: linear vs diminishing-return density penalty
    fitness = [1.0, 1.05, 1.10, 1.15]
    eco_rows = []
    for label, density in (
        ("linear (no penalty)", None),
        ("diminishing-return", PowerDensityDependence(strength=2.0)),
    ):
        system = ReplicatorSystem(fitness, density=density)
        traj = system.run([100.0] * 4, steps=600)
        eco_rows.append({
            "regime": label,
            "surviving_species": traj.surviving_species(threshold=1e-3),
            "dominant_share": round(float(traj.dominant_share()[-1]), 4),
            "final_G": float(traj.diversity_series()[-1]),
        })

    # (b) allele level: marginal selection near saturation is weak
    population = 500
    allele_rows = []
    for label, f in (
        ("linear", LinearFitness(base=1.0, slope=0.02)),
        ("concave (Fig. 2)", ConcaveFitness(base=1.0, gain=1.0, scale=3.0)),
    ):
        # deleterious mutation: lose one advantageous allele at x = 15
        x = 18.0
        s = selection_coefficient(float(f(x - 1)), float(f(x)))
        model = MoranModel(population_size=population, s=s)
        allele_rows.append({
            "fitness_shape": label,
            "selection_coeff_at_x18": round(s, 6),
            "drift_threshold_1_over_2N": round(1 / (2 * population), 6),
            "effectively_neutral": abs(s) < 1 / (2 * population),
            "fixation_prob_vs_neutral": round(
                model.exact_fixation_probability(1)
                / (1 / population), 3
            ),
        })
    return eco_rows, allele_rows


def test_e06_concave_fitness_diversity(benchmark):
    eco_rows, allele_rows = run_once(benchmark, run_experiment)
    print("\nE06a: ecosystem diversity, linear vs diminishing-return fitness")
    print(render_table(eco_rows))
    print("\nE06b: weak selection on the marginal allele near saturation")
    print(render_table(allele_rows))
    linear, concave = eco_rows
    assert linear["surviving_species"] == 1
    assert concave["surviving_species"] == 4
    # even 4-species limit is exactly 4x the monoculture G here
    assert concave["final_G"] > linear["final_G"] * 3
    lin_allele, conc_allele = allele_rows
    # concave fitness makes the same mutation effectively neutral
    assert not lin_allele["effectively_neutral"]
    assert conc_allele["effectively_neutral"]
    # so deleterious copies behave nearly like neutral ones under drift
    assert conc_allele["fixation_prob_vs_neutral"] > 0.8
    assert lin_allele["fixation_prob_vs_neutral"] < 0.2
