"""E08 — Gene-knockout redundancy (paper §3.1.1).

Claim: "E. Coli has approximately 4,300 genes ... almost 4,000 of them
are known to be redundant – knocking out one of them will not hamper its
ability to reproduce."  We regenerate the single-knockout screen on the
synthetic genome and sweep the built-in coverage redundancy: the
redundant fraction rises toward the paper's ~93 % as mean coverage grows.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.redundancy.knockout import ecoli_like_genome, knockout_scan


def run_experiment():
    rows = []
    for mean_redundancy in (1.0, 1.5, 2.0, 3.0, 4.0):
        genome = ecoli_like_genome(
            n_genes=4300, n_functions=900,
            mean_redundancy=mean_redundancy, seed=42,
        )
        scan = knockout_scan(genome)
        rows.append({
            "mean_coverage": mean_redundancy,
            "n_genes": scan.n_genes,
            "viable_single_knockouts": scan.n_viable,
            "redundant_fraction": round(scan.redundant_fraction, 4),
        })
    return rows


def test_e08_gene_knockout(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE08: single-gene knockout screen (paper: ~4000/4300 = 93%)")
    print(render_table(rows))
    fractions = [row["redundant_fraction"] for row in rows]
    # redundancy monotonically protects against knockouts
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))
    # at E. coli-like coverage the paper's ~93 % figure is reproduced
    assert fractions[-2] > 0.90
    assert rows[-2]["viable_single_knockouts"] > 3800
    # without redundancy, every covering gene is essential
    assert fractions[0] < 0.85
