"""E03 — K-maintainable policy construction (paper §4.3, Baral–Eiter).

Claims: (a) the polynomial-time construction agrees with brute-force
policy search; (b) it scales to spacecraft transition systems far beyond
naive enumeration.  We regenerate both: an agreement table on random
systems and a maintainability series over spacecraft of growing size.

Engine-aware: part (b) goes through :meth:`Spacecraft.maintainability`,
which honours ``REPRO_CSP_ENGINE`` — the object column materializes the
full transition system, the bit column runs the add-bit BFS on the
compiled fit mask.  Both must produce a maintainable k=2 policy whose
level table covers the debris envelope.
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.analysis.tables import render_table
from repro.planning.kmaintain import construct_policy
from repro.planning.verify import brute_force_maintainable, verify_policy
from repro.rng import make_rng
from repro.spacecraft.system import Spacecraft

ORACLE_TRIALS = scaled(40, 8)
COMPONENTS = scaled((6, 10, 14), (4, 6))


def random_system(rng, n_states=4):
    from repro.planning.transition import TransitionSystem

    ts = TransitionSystem(states=frozenset(range(n_states)))
    for a in range(2):
        for s in range(n_states):
            if rng.random() < 0.7:
                outs = rng.choice(n_states, size=1 + int(rng.integers(2)),
                                  replace=False)
                ts.add_agent_action(f"a{a}", s, [int(o) for o in outs])
    for s in range(n_states):
        if rng.random() < 0.4:
            outs = rng.choice(n_states, size=1 + int(rng.integers(2)),
                              replace=False)
            ts.add_exo_action("e", s, [int(o) for o in outs])
    return ts


def run_experiment():
    # (a) agreement with the exponential oracle
    rng = make_rng(123)
    agreement = 0
    for _ in range(ORACLE_TRIALS):
        ts = random_system(rng)
        for k in (1, 2):
            fast = construct_policy(ts, [0], [0], k)
            slow = brute_force_maintainable(ts, [0], [0], k)
            if fast.maintainable == slow:
                if not fast.maintainable or verify_policy(ts, fast.policy, [0]):
                    agreement += 1
    # (b) spacecraft maintainability at growing size (engine-dispatched)
    scaling = []
    for n in COMPONENTS:
        craft = Spacecraft(n)
        result = craft.maintainability(max_debris_hits=2, k=2)
        scaling.append({
            "n_components": n,
            "n_states": 2**n,
            "maintainable_k2": result.maintainable,
            "envelope_states": len(result.envelope),
            "policy_states": len(result.policy.actions),
        })
    return agreement, 2 * ORACLE_TRIALS, scaling


def test_e03_kmaintainability(benchmark):
    agreement, total, scaling = run_once(benchmark, run_experiment)
    print(f"\nE03: polynomial construction vs brute force: "
          f"{agreement}/{total} agree")
    print(render_table(scaling))
    assert agreement == total
    for row in scaling:
        assert row["maintainable_k2"]
        # envelope = fit state plus every ≤2-hit damage outcome;
        # the policy must cover exactly the damaged ones
        n = row["n_components"]
        assert row["envelope_states"] == 1 + n + n * (n - 1) // 2
        assert row["policy_states"] >= row["envelope_states"] - 1
