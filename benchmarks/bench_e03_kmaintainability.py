"""E03 — K-maintainable policy construction (paper §4.3, Baral–Eiter).

Claims: (a) the polynomial-time construction agrees with brute-force
policy search; (b) its runtime scales polynomially with the state count,
unlike naive enumeration.  We regenerate both: an agreement table on
random systems and a timing series over spacecraft transition systems of
growing size.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.analysis.tables import render_table
from repro.planning.kmaintain import construct_policy
from repro.planning.verify import brute_force_maintainable, verify_policy
from repro.rng import make_rng
from repro.spacecraft.system import Spacecraft


def random_system(rng, n_states=4):
    from repro.planning.transition import TransitionSystem

    ts = TransitionSystem(states=frozenset(range(n_states)))
    for a in range(2):
        for s in range(n_states):
            if rng.random() < 0.7:
                outs = rng.choice(n_states, size=1 + int(rng.integers(2)),
                                  replace=False)
                ts.add_agent_action(f"a{a}", s, [int(o) for o in outs])
    for s in range(n_states):
        if rng.random() < 0.4:
            outs = rng.choice(n_states, size=1 + int(rng.integers(2)),
                              replace=False)
            ts.add_exo_action("e", s, [int(o) for o in outs])
    return ts


def run_experiment():
    # (a) agreement with the exponential oracle
    rng = make_rng(123)
    agreement = 0
    trials = 40
    for _ in range(trials):
        ts = random_system(rng)
        for k in (1, 2):
            fast = construct_policy(ts, [0], [0], k)
            slow = brute_force_maintainable(ts, [0], [0], k)
            if fast.maintainable == slow:
                if not fast.maintainable or verify_policy(ts, fast.policy, [0]):
                    agreement += 1
    # (b) polynomial scaling on the spacecraft encoding
    scaling = []
    for n in (4, 6, 8, 10):
        craft = Spacecraft(n)
        ts = craft.to_transition_system(max_debris_hits=2)
        goals = craft.fit_states()
        start = time.perf_counter()
        result = construct_policy(ts, goals, goals, k=2)
        elapsed = time.perf_counter() - start
        scaling.append({
            "n_components": n,
            "n_states": 2**n,
            "maintainable_k2": result.maintainable,
            "construct_seconds": round(elapsed, 4),
        })
    return agreement, 2 * trials, scaling


def test_e03_kmaintainability(benchmark):
    agreement, total, scaling = run_once(benchmark, run_experiment)
    print(f"\nE03: polynomial construction vs brute force: "
          f"{agreement}/{total} agree")
    print(render_table(scaling))
    assert agreement == total
    for row in scaling:
        assert row["maintainable_k2"]
    # runtime grows far slower than the 2^states policy space:
    # doubling state count (n -> n+2) should not blow up by > ~30x
    times = [max(row["construct_seconds"], 1e-4) for row in scaling]
    for t1, t2 in zip(times, times[1:]):
        assert t2 / t1 < 30
