#!/usr/bin/env python
"""Wall-time snapshot for the agent-heavy benchmarks.

Times each benchmark's ``run_experiment()`` directly (no pytest, no
assertion overhead) and writes a JSON snapshot, so successive PRs leave
a perf trajectory to compare against::

    PYTHONPATH=../src python run_benchmarks.py --json BENCH_agents.json

Engine-switchable benchmarks (those built on ``make_engine``) are timed
once per engine — the object-engine column is the "before" and the
array-engine column the "after" of the vectorization work.  Benchmarks
that were vectorized in place record a single timing.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

# benchmarks whose engine comes from make_engine / REPRO_AGENT_ENGINE
ENGINE_AWARE = {
    "e19_strategy_tradeoffs": "bench_e19_strategy_tradeoffs",
    "e23_granularity": "bench_e23_granularity",
}
# benchmarks vectorized in place (single implementation)
VECTORIZED = {
    "e07_diversity_survival": "bench_e07_diversity_survival",
    "e25_stickleback_readaptation": "bench_e25_stickleback_readaptation",
}
ALL = {**ENGINE_AWARE, **VECTORIZED}


def time_experiment(module_name: str, repeat: int) -> float:
    """Best-of-``repeat`` wall time of one run_experiment() call."""
    module = importlib.import_module(module_name)
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        module.run_experiment()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the snapshot to this JSON file")
    parser.add_argument("--benchmarks", default=",".join(ALL),
                        help=f"comma-separated subset of: {','.join(ALL)}")
    parser.add_argument("--engines", default="object,array",
                        help="engines to time for engine-aware benchmarks")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repeats per timing; the minimum is recorded")
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
    unknown = [n for n in names if n not in ALL]
    if unknown:
        parser.error(f"unknown benchmarks: {unknown}; expected {sorted(ALL)}")
    engines = [e.strip() for e in args.engines.split(",") if e.strip()]

    timings: dict[str, dict[str, float]] = {}
    for name in names:
        module_name = ALL[name]
        if name in ENGINE_AWARE:
            timings[name] = {}
            for engine in engines:
                os.environ["REPRO_AGENT_ENGINE"] = engine
                seconds = time_experiment(module_name, args.repeat)
                timings[name][engine] = round(seconds, 4)
                print(f"{name:32s} {engine:10s} {seconds:8.3f} s")
            os.environ.pop("REPRO_AGENT_ENGINE", None)
        else:
            seconds = time_experiment(module_name, args.repeat)
            timings[name] = {"vectorized": round(seconds, 4)}
            print(f"{name:32s} {'vectorized':10s} {seconds:8.3f} s")

    speedups = {
        name: round(t["object"] / t["array"], 2)
        for name, t in timings.items()
        if "object" in t and "array" in t and t["array"] > 0
    }
    for name, s in speedups.items():
        print(f"{name:32s} array speedup {s:6.2f}x")

    snapshot = {
        "schema": 1,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": importlib.import_module("numpy").__version__,
        "repeat": args.repeat,
        "timings_s": timings,
        "array_speedup": speedups,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
