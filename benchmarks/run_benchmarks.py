#!/usr/bin/env python
"""Wall-time snapshot for the agent-heavy benchmarks.

Times each benchmark's ``run_experiment()`` directly (no pytest, no
assertion overhead) and writes a JSON snapshot, so successive PRs leave
a perf trajectory to compare against::

    PYTHONPATH=../src python run_benchmarks.py --json BENCH_agents.json

Engine-switchable benchmarks (those built on ``make_engine``) are timed
once per engine — the object-engine column is the "before" and the
array-engine column the "after" of the vectorization work.  Benchmarks
that were vectorized in place record a single timing.

Every experiment runs under a :class:`repro.runtime.trace.Tracer`, so
the snapshot carries a per-experiment timing breakdown (simulator runs,
steps, time inside the step loops vs. harness overhead) next to the raw
wall times; ``--trace events.jsonl`` additionally streams structured
events.  ``--smoke`` switches the benchmarks to tiny grids (via
``REPRO_BENCH_SMOKE``) so the whole harness runs in seconds — the mode
the tier-2 test exercises.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

# benchmarks whose engine comes from make_engine / REPRO_AGENT_ENGINE
ENGINE_AWARE = {
    "e19_strategy_tradeoffs": "bench_e19_strategy_tradeoffs",
    "e23_granularity": "bench_e23_granularity",
}
# benchmarks vectorized in place (single implementation)
VECTORIZED = {
    "e07_diversity_survival": "bench_e07_diversity_survival",
    "e25_stickleback_readaptation": "bench_e25_stickleback_readaptation",
}
ALL = {**ENGINE_AWARE, **VECTORIZED}


def _breakdown(tracer, wall_s: float) -> dict:
    """Per-experiment split: simulator work vs. everything else."""
    summary = tracer.summary()
    counters = summary["counters"]
    sim_time = sum(
        stats["total_s"]
        for name, stats in summary["timers"].items()
        if name.startswith("sim.run.")
    )
    return {
        "wall_s": round(wall_s, 4),
        "sim_runs": sum(
            v for k, v in counters.items() if k.startswith("sim.runs.")
        ),
        "sim_steps": sum(
            v for k, v in counters.items() if k.startswith("sim.steps.")
        ),
        "sim_time_s": round(sim_time, 4),
        "sweep_points": counters.get("sweep.points.ok", 0),
        "harness_s": round(max(wall_s - sim_time, 0.0), 4),
    }


def time_experiment(
    module_name: str, repeat: int, trace_path: str | None
) -> tuple[float, dict]:
    """Best-of-``repeat`` wall time + the best run's trace breakdown."""
    from repro.runtime import trace
    from repro.runtime.trace import Tracer

    module = importlib.import_module(module_name)
    best = float("inf")
    breakdown: dict = {}
    for _ in range(repeat):
        with Tracer(path=trace_path, keep_events=False) as tracer:
            with trace.use(tracer):
                tracer.event("bench.start", benchmark=module_name)
                start = time.perf_counter()
                module.run_experiment()
                elapsed = time.perf_counter() - start
                tracer.event(
                    "bench.end",
                    benchmark=module_name,
                    elapsed_s=round(elapsed, 4),
                )
        if elapsed < best:
            best = elapsed
            breakdown = _breakdown(tracer, elapsed)
    return best, breakdown


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the snapshot to this JSON file")
    parser.add_argument("--benchmarks", default=",".join(ALL),
                        help=f"comma-separated subset of: {','.join(ALL)}")
    parser.add_argument("--engines", default="object,array",
                        help="engines to time for engine-aware benchmarks")
    parser.add_argument("--repeat", type=int, default=None,
                        help="repeats per timing; the minimum is recorded "
                             "(default 3, or 1 with --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grids (REPRO_BENCH_SMOKE=1): exercise "
                             "the whole harness in seconds, not minutes")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="append structured JSONL trace events here")
    args = parser.parse_args(argv)
    repeat = args.repeat if args.repeat is not None else (
        1 if args.smoke else 3
    )
    if args.smoke:
        # must be set before the benchmark modules are imported — their
        # grid sizes are module-level constants scaled by this variable
        os.environ["REPRO_BENCH_SMOKE"] = "1"

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
    unknown = [n for n in names if n not in ALL]
    if unknown:
        parser.error(f"unknown benchmarks: {unknown}; expected {sorted(ALL)}")
    engines = [e.strip() for e in args.engines.split(",") if e.strip()]

    timings: dict[str, dict[str, float]] = {}
    breakdowns: dict[str, dict[str, dict]] = {}
    for name in names:
        module_name = ALL[name]
        timings[name] = {}
        breakdowns[name] = {}
        if name in ENGINE_AWARE:
            for engine in engines:
                os.environ["REPRO_AGENT_ENGINE"] = engine
                seconds, breakdown = time_experiment(
                    module_name, repeat, args.trace
                )
                timings[name][engine] = round(seconds, 4)
                breakdowns[name][engine] = breakdown
                print(f"{name:32s} {engine:10s} {seconds:8.3f} s")
            os.environ.pop("REPRO_AGENT_ENGINE", None)
        else:
            seconds, breakdown = time_experiment(
                module_name, repeat, args.trace
            )
            timings[name] = {"vectorized": round(seconds, 4)}
            breakdowns[name]["vectorized"] = breakdown
            print(f"{name:32s} {'vectorized':10s} {seconds:8.3f} s")

    speedups = {
        name: round(t["object"] / t["array"], 2)
        for name, t in timings.items()
        if "object" in t and "array" in t and t["array"] > 0
    }
    for name, s in speedups.items():
        print(f"{name:32s} array speedup {s:6.2f}x")

    from repro.analysis.tables import render_table

    summary_rows = [
        {"benchmark": name, "engine": engine, **stats}
        for name, per_engine in breakdowns.items()
        for engine, stats in per_engine.items()
    ]
    if summary_rows:
        print("\nper-experiment breakdown (best run):")
        print(render_table(summary_rows))

    snapshot = {
        "schema": 2,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": importlib.import_module("numpy").__version__,
        "repeat": repeat,
        "smoke": bool(args.smoke),
        "timings_s": timings,
        "breakdowns": breakdowns,
        "array_speedup": speedups,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
