#!/usr/bin/env python
"""Wall-time snapshot for the agent-heavy benchmarks.

Times each benchmark's ``run_experiment()`` directly (no pytest, no
assertion overhead) and writes JSON snapshots, so successive PRs leave
a perf trajectory to compare against::

    PYTHONPATH=../src python run_benchmarks.py \
        --json BENCH_agents.json --json-networks BENCH_networks.json

Engine-switchable benchmarks are timed once per engine — the
object-engine column is the "before" and the array/bit-engine column
the "after" of the vectorization work.  Agent benchmarks
(``make_engine``) switch via ``REPRO_AGENT_ENGINE``; network benchmarks
(``make_network_engine``) via ``REPRO_NETWORK_ENGINE``; CSP benchmarks
(``make_csp_engine``) via ``REPRO_CSP_ENGINE``, timed as object vs
compiled bit-matrix (``--json-csp`` writes that family's snapshot).
Benchmarks that were vectorized in place record a single timing.

``--json-csp`` additionally emits a **scale axis** (snapshot schema 3):
the wall time of one exact n-recoverability check at n ∈ {14, 18, 22,
24} per engine — the object column stops at n = 18 and the bit column
at its 2^20 envelope, while the block-streamed ``tiled`` engine covers
the full axis (``--smoke`` shrinks the axis to n ∈ {10, 12, 14}).

``--scale-networks`` promotes the network snapshot to schema 3 with its
own scale axis: one targeted-attack percolation curve plus one SIR run
on a streamed mean-degree-10 ER graph at n ∈ {10^4, 10^5, 10^6,
4·10^6} per capable engine (object stops at 10^4, array at 10^5, the
memory-mapped engine covers the full axis under a 512 MB supervisor
budget).  Each point runs in its own subprocess so the recorded peak
RSS is honest; ``--smoke`` shrinks the axis to n ∈ {300, 1000, 3000}.
See :mod:`scale_networks`.

A benchmark module may define ``setup()``; its return value is passed
to ``run_experiment(state)`` and its cost (fixture generation, which is
identical for every engine) is excluded from the timed region.

Every experiment runs under a :class:`repro.runtime.trace.Tracer`, so
the snapshot carries a per-experiment timing breakdown (simulator runs,
steps, time inside the step loops vs. harness overhead) next to the raw
wall times; ``--trace events.jsonl`` additionally streams structured
events.  ``--smoke`` switches the benchmarks to tiny grids (via
``REPRO_BENCH_SMOKE``) so the whole harness runs in seconds — the mode
the tier-2 test exercises.

``--chaos`` additionally runs the runtime-resilience drill
(:func:`repro.runtime.chaos.run_drill`): a supervised, checkpointed
sweep under injected worker crash / hang / simulated OOM / NaN faults
plus a mid-file checkpoint corruption, checked row-for-row against a
fault-free all-object-engine baseline.  The harness exits non-zero if
any acceptance criterion fails — the CI smoke job runs this mode.

``--service-load`` runs the R02 service drill
(:func:`repro.service.loadtest.run_load_test`): >= 2000 points across
concurrently submitted jobs (zero lost/duplicated, rows byte-identical
to the batch sweep), an identical resubmission served entirely from the
fingerprint cache, a cancellation, and a breaker trip mid-load that
sheds new work with backpressure while accepted jobs finish.  Exits
non-zero if any criterion fails — CI runs this mode too.

``--crash-drill`` runs the R03 crash-recovery drill
(:func:`repro.service.crashdrill.run_crash_drill`) **twice with the
same seed**: a durable service is SIGKILLed mid-load, its journal gets
a torn record and its result store a garbled line, and a fresh process
must recover every incomplete job with zero lost points, zero
duplicated executions, rows byte-identical to the uninterrupted batch
sweep — and byte-identical across the two drill runs.  Exits non-zero
if any criterion (or the cross-run comparison) fails.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

# benchmarks whose engine comes from make_engine / REPRO_AGENT_ENGINE
ENGINE_AWARE = {
    "e19_strategy_tradeoffs": "bench_e19_strategy_tradeoffs",
    "e23_granularity": "bench_e23_granularity",
}
# benchmarks whose engine comes from make_network_engine /
# REPRO_NETWORK_ENGINE
NETWORK_ENGINE_AWARE = {
    "e21_scalefree_attack": "bench_e21_scalefree_attack",
    "e22_epidemic_immunization": "bench_e22_epidemic_immunization",
    "a08_attack_family": "bench_a08_attack_family",
    "a10_network_recovery": "bench_a10_network_recovery",
}
# benchmarks whose engine comes from make_csp_engine / REPRO_CSP_ENGINE;
# A01/A02 use no CSP machinery and ride along as ~1x no-regression
# controls for the seam
CSP_ENGINE_AWARE = {
    "e02_spacecraft_recoverability": "bench_e02_spacecraft_recoverability",
    "e03_kmaintainability": "bench_e03_kmaintainability",
    "a01_seawall_design": "bench_a01_seawall_design",
    "a02_capacity_margin": "bench_a02_capacity_margin",
}
# benchmarks vectorized in place (single implementation)
VECTORIZED = {
    "e07_diversity_survival": "bench_e07_diversity_survival",
    "e25_stickleback_readaptation": "bench_e25_stickleback_readaptation",
}
ALL = {
    **ENGINE_AWARE, **NETWORK_ENGINE_AWARE, **CSP_ENGINE_AWARE, **VECTORIZED
}
# which env var selects the engine for each engine-aware benchmark
ENGINE_VAR = {
    **{name: "REPRO_AGENT_ENGINE" for name in ENGINE_AWARE},
    **{name: "REPRO_NETWORK_ENGINE" for name in NETWORK_ENGINE_AWARE},
    **{name: "REPRO_CSP_ENGINE" for name in CSP_ENGINE_AWARE},
}
# engines timed when --engines is not given: the CSP family's columns
# are object vs bit, everything engine-aware else object vs array
DEFAULT_ENGINES = {
    **{name: "object,array" for name in ENGINE_AWARE},
    **{name: "object,array" for name in NETWORK_ENGINE_AWARE},
    **{name: "object,bit" for name in CSP_ENGINE_AWARE},
}
# snapshot families: --json gets the agent family, --json-networks the
# network family (so BENCH_agents.json keeps its historical shape), and
# --json-csp the CSP family
AGENT_FAMILY = {**ENGINE_AWARE, **VECTORIZED}
NETWORK_FAMILY = NETWORK_ENGINE_AWARE
CSP_FAMILY = CSP_ENGINE_AWARE

# CSP scale axis (schema 3): wall time of one exact n-recoverability
# check vs n, per engine.  The object kernels enumerate 2^n assignments
# in Python, so their column stops at n = 18; the bit engine's envelope
# ends at DEFAULT_MAX_BITS = 20; the tiled engine streams the full axis.
CSP_SCALE_NS = (14, 18, 22, 24)
CSP_SCALE_NS_SMOKE = (10, 12, 14)
CSP_SCALE_CAP = {"object": 18, "bit": 20, "tiled": 64}


def _breakdown(tracer, wall_s: float) -> dict:
    """Per-experiment split: simulator work vs. everything else."""
    summary = tracer.summary()
    counters = summary["counters"]

    def count(prefix: str) -> int:
        return sum(v for k, v in counters.items() if k.startswith(prefix))

    sim_time = sum(
        stats["total_s"]
        for name, stats in summary["timers"].items()
        if name.startswith("sim.run.")
    )
    net_time = sum(
        stats["total_s"]
        for name, stats in summary["timers"].items()
        if name.startswith("net.")
    )
    csp_time = sum(
        stats["total_s"]
        for name, stats in summary["timers"].items()
        if name.startswith("csp.")
    )
    return {
        "wall_s": round(wall_s, 4),
        "sim_runs": count("sim.runs."),
        "sim_steps": count("sim.steps."),
        "sim_time_s": round(sim_time, 4),
        "net_curves": count("net.curves."),
        "net_cascades": count("net.cascades."),
        "net_epidemic_runs": count("net.epidemic.runs."),
        "net_healing_runs": count("net.healing.runs."),
        "net_time_s": round(net_time, 4),
        "csp_compiles": counters.get("csp.compiles", 0),
        "csp_fallbacks": counters.get("csp.fallbacks", 0),
        "csp_recover_checks": count("csp.recover.checks."),
        "csp_kmaintain_runs": count("csp.kmaintain.runs."),
        "csp_repair_runs": count("csp.repair.runs."),
        "csp_dcsp_runs": count("csp.dcsp.runs."),
        "csp_time_s": round(csp_time, 4),
        "sweep_points": counters.get("sweep.points.ok", 0),
        "harness_s": round(
            max(wall_s - sim_time - net_time - csp_time, 0.0), 4
        ),
    }


def time_experiment(
    module_name: str, repeat: int, trace_path: str | None
) -> tuple[float, dict]:
    """Best-of-``repeat`` wall time + the best run's trace breakdown."""
    from repro.runtime import trace
    from repro.runtime.trace import Tracer

    module = importlib.import_module(module_name)
    # fixture generation (identical for every engine) stays untimed
    setup = getattr(module, "setup", None)
    state = setup() if setup is not None else None
    best = float("inf")
    breakdown: dict = {}
    for _ in range(repeat):
        with Tracer(path=trace_path, keep_events=False) as tracer:
            with trace.use(tracer):
                tracer.event("bench.start", benchmark=module_name)
                start = time.perf_counter()
                if setup is not None:
                    module.run_experiment(state)
                else:
                    module.run_experiment()
                elapsed = time.perf_counter() - start
                tracer.event(
                    "bench.end",
                    benchmark=module_name,
                    elapsed_s=round(elapsed, 4),
                )
        if elapsed < best:
            best = elapsed
            breakdown = _breakdown(tracer, elapsed)
    return best, breakdown


def time_csp_scale(ns: tuple, repeat: int) -> dict:
    """Wall time of one n=·· recoverability check per engine (scale axis).

    Each point times ``Spacecraft(n).recoverability_report(3, 3)`` on a
    fresh spacecraft (so per-CSP compile caches never carry between
    repeats); construction itself stays untimed.  Engines skip the
    points beyond their practical cap (:data:`CSP_SCALE_CAP`).
    """
    from repro.spacecraft.system import Spacecraft

    axis: dict = {}
    for n in ns:
        axis[str(n)] = {}
        for engine in ("object", "bit", "tiled"):
            if n > CSP_SCALE_CAP[engine]:
                continue
            best = float("inf")
            for _ in range(repeat):
                craft = Spacecraft(n)
                start = time.perf_counter()
                report = craft.recoverability_report(3, 3, engine=engine)
                elapsed = time.perf_counter() - start
                assert report.is_k_recoverable  # sanity, not timing
                best = min(best, elapsed)
            axis[str(n)][engine] = round(best, 4)
            print(f"csp scale n={n:<3d}{'':20s} {engine:10s} {best:8.3f} s")
    return axis


def run_chaos_drill(seed: int = 2013) -> int:
    """Run the self-healing acceptance drill; 0 iff every criterion holds."""
    import tempfile

    from repro.runtime.chaos import run_drill

    print("chaos drill: supervised 16-point sweep under injected faults")
    start = time.perf_counter()
    with tempfile.TemporaryDirectory() as workdir:
        report = run_drill(seed=seed, workdir=workdir)
    elapsed = time.perf_counter() - start
    checks = {
        "every point completed ok": report["ok"] == report["n_points"],
        "circuit breaker tripped": report["trips"] >= 1,
        "engines degraded": report["degradations"] >= 1,
        "suspect points re-run": report["reruns"] >= 1,
        "NaN poisoning caught": report["poisoned"] >= 1,
        "corrupt checkpoint line quarantined": report["quarantined"] >= 1,
        "rows identical to all-object baseline": report["baseline_identical"],
    }
    for label, ok in checks.items():
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
    passed = all(checks.values())
    print(
        f"chaos drill {'passed' if passed else 'FAILED'} "
        f"in {elapsed:.1f} s (plan: "
        + ", ".join(f"{f['kind']}@{f['point']}" for f in report["plan"])
        + ")"
    )
    return 0 if passed else 1


def run_service_load(smoke: bool) -> int:
    """Run the R02 service load drill; 0 iff every criterion holds."""
    from repro.service.loadtest import run_load_test

    print(
        "service load drill: >= 2000 concurrent points across jobs "
        "(dedupe, cache, cancel, breaker-trip degradation)"
    )
    start = time.perf_counter()
    report = run_load_test(cancel_points=40 if smoke else 100, verbose=True)
    elapsed = time.perf_counter() - start
    print(
        f"service load drill {'passed' if report['passed'] else 'FAILED'} "
        f"in {elapsed:.1f} s ({report['unique_points']} unique points, "
        f"{report['submitted_jobs']} jobs, "
        f"{report['throughput_pts_s']:.0f} pts/s, "
        f"cache hits {report['counters'].get('service.cache.hits', 0)})"
    )
    return 0 if report["passed"] else 1


def run_crash_drill_twice(seed: int = 2013) -> int:
    """Run the R03 crash drill twice; 0 iff both pass, rows identical."""
    import tempfile

    from repro.service.crashdrill import run_crash_drill

    print(
        "crash drill: SIGKILL a durable service mid-load, corrupt the "
        "journal tail + result store, recover in a fresh process"
    )
    start = time.perf_counter()
    reports = []
    for attempt in (1, 2):
        print(f"  drill run {attempt}/2:")
        with tempfile.TemporaryDirectory() as workdir:
            reports.append(
                run_crash_drill(seed=seed, workdir=workdir, verbose=True)
            )
    elapsed = time.perf_counter() - start
    identical = reports[0]["rows"] == reports[1]["rows"]
    print(
        f"  {'ok  ' if identical else 'FAIL'} "
        "same seed twice -> byte-identical recovered rows"
    )
    passed = all(r["passed"] for r in reports) and identical
    first = reports[0]
    print(
        f"crash drill {'passed' if passed else 'FAILED'} in "
        f"{elapsed:.1f} s (killed after "
        f"{first['points_done_at_kill']}/{first['unique_points']} points, "
        f"{len(first['incomplete_at_kill'])} job(s) recovered, "
        f"{first['expected_reexecutions']} point(s) re-executed)"
    )
    return 0 if passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the agent-family snapshot to this "
                             "JSON file")
    parser.add_argument("--json-networks", metavar="PATH", default=None,
                        help="write the network-family snapshot to this "
                             "JSON file")
    parser.add_argument("--json-csp", metavar="PATH", default=None,
                        help="write the CSP-family snapshot to this "
                             "JSON file")
    parser.add_argument("--benchmarks", default=",".join(ALL),
                        help=f"comma-separated subset of: {','.join(ALL)}")
    parser.add_argument("--engines", default=None,
                        help="engines to time for engine-aware benchmarks "
                             "(default per family: object,bit for the CSP "
                             "benchmarks, object,array otherwise)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="repeats per timing; the minimum is recorded "
                             "(default 3, or 1 with --smoke)")
    parser.add_argument("--scale-networks", action="store_true",
                        help="also run the network scale axis (one "
                             "percolation curve + one SIR run per engine "
                             "and n, subprocess-isolated for honest peak "
                             "RSS); promotes --json-networks to schema 3")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grids (REPRO_BENCH_SMOKE=1): exercise "
                             "the whole harness in seconds, not minutes")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="append structured JSONL trace events here")
    parser.add_argument("--chaos", action="store_true",
                        help="also run the runtime-resilience chaos drill "
                             "(exit non-zero if self-healing fails)")
    parser.add_argument("--service-load", action="store_true",
                        help="also run the R02 service load drill: >= 2000 "
                             "concurrent points, fingerprint-cache "
                             "resubmission, cancellation, and breaker-trip "
                             "degradation (exit non-zero on any failure)")
    parser.add_argument("--crash-drill", action="store_true",
                        help="also run the R03 crash-recovery drill twice "
                             "(SIGKILL mid-load + journal/store corruption "
                             "+ recovery; exit non-zero on any failure or "
                             "cross-run row divergence)")
    args = parser.parse_args(argv)
    repeat = args.repeat if args.repeat is not None else (
        1 if args.smoke else 3
    )
    if args.smoke:
        # must be set before the benchmark modules are imported — their
        # grid sizes are module-level constants scaled by this variable
        os.environ["REPRO_BENCH_SMOKE"] = "1"

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
    unknown = [n for n in names if n not in ALL]
    if unknown:
        parser.error(f"unknown benchmarks: {unknown}; expected {sorted(ALL)}")

    def engines_for(name: str) -> list[str]:
        spec = args.engines or DEFAULT_ENGINES.get(name, "object,array")
        return [e.strip() for e in spec.split(",") if e.strip()]

    timings: dict[str, dict[str, float]] = {}
    breakdowns: dict[str, dict[str, dict]] = {}
    for name in names:
        module_name = ALL[name]
        timings[name] = {}
        breakdowns[name] = {}
        env_var = ENGINE_VAR.get(name)
        if env_var is not None:
            for engine in engines_for(name):
                os.environ[env_var] = engine
                seconds, breakdown = time_experiment(
                    module_name, repeat, args.trace
                )
                timings[name][engine] = round(seconds, 4)
                breakdowns[name][engine] = breakdown
                print(f"{name:32s} {engine:10s} {seconds:8.3f} s")
            os.environ.pop(env_var, None)
        else:
            seconds, breakdown = time_experiment(
                module_name, repeat, args.trace
            )
            timings[name] = {"vectorized": round(seconds, 4)}
            breakdowns[name]["vectorized"] = breakdown
            print(f"{name:32s} {'vectorized':10s} {seconds:8.3f} s")

    speedups = {
        name: round(t["object"] / t["array"], 2)
        for name, t in timings.items()
        if "object" in t and "array" in t and t["array"] > 0
    }
    bit_speedups = {
        name: round(t["object"] / t["bit"], 2)
        for name, t in timings.items()
        if "object" in t and "bit" in t and t["bit"] > 0
    }
    for name, s in speedups.items():
        print(f"{name:32s} array speedup {s:6.2f}x")
    for name, s in bit_speedups.items():
        print(f"{name:32s} bit speedup   {s:6.2f}x")

    from repro.analysis.tables import render_table

    summary_rows = [
        {"benchmark": name, "engine": engine, **stats}
        for name, per_engine in breakdowns.items()
        for engine, stats in per_engine.items()
    ]
    if summary_rows:
        print("\nper-experiment breakdown (best run):")
        print(render_table(summary_rows))

    # the CSP snapshot (schema 3) carries the scale axis: wall time of
    # one exact recoverability check vs n, per engine, plus the
    # object/tiled ratio wherever both engines cover the point
    scale_axis: dict = {}
    scale_speedups: dict = {}
    if args.json_csp:
        ns = CSP_SCALE_NS_SMOKE if args.smoke else CSP_SCALE_NS
        scale_axis = time_csp_scale(ns, repeat)
        scale_speedups = {
            n: round(t["object"] / t["tiled"], 2)
            for n, t in scale_axis.items()
            if "object" in t and "tiled" in t and t["tiled"] > 0
        }
        for n, s in scale_speedups.items():
            print(f"csp scale n={n:<3s}{'':20s} tiled speedup {s:6.2f}x")

    def snapshot_for(
        family: dict, speedup_key: str, by_name: dict,
        schema: int = 2, extra: dict | None = None,
    ) -> dict:
        keep = [n for n in timings if n in family]
        return {
            "schema": schema,
            "generated": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "python": platform.python_version(),
            "numpy": importlib.import_module("numpy").__version__,
            "repeat": repeat,
            "smoke": bool(args.smoke),
            "timings_s": {n: timings[n] for n in keep},
            "breakdowns": {n: breakdowns[n] for n in keep},
            speedup_key: {
                n: s for n, s in by_name.items() if n in family
            },
            **(extra or {}),
        }

    # the network snapshot gains its own scale axis (schema 3) when
    # --scale-networks is on: per-(n, engine) build/percolation/SIR
    # times and peak RSS, subprocess-isolated (see scale_networks.py)
    networks_schema = 2
    networks_extra: dict | None = None
    if args.scale_networks:
        import scale_networks

        net_axis = scale_networks.time_network_scale(smoke=args.smoke)
        networks_schema = 3
        networks_extra = {
            "scale_ns": net_axis,
            "scale_budget_mb": scale_networks.SCALE_BUDGET_MB,
            "scale_mean_degree": scale_networks.MEAN_DEGREE,
        }

    csp_extra = {
        "scale_ns": scale_axis,
        "scale_tiled_speedup": scale_speedups,
    }
    for path, family, speedup_key, by_name, schema, extra in (
        (args.json, AGENT_FAMILY, "array_speedup", speedups, 2, None),
        (args.json_networks, NETWORK_FAMILY, "array_speedup",
         speedups, networks_schema, networks_extra),
        (args.json_csp, CSP_FAMILY, "bit_speedup", bit_speedups,
         3, csp_extra),
    ):
        if path:
            with open(path, "w") as fh:
                json.dump(
                    snapshot_for(family, speedup_key, by_name,
                                 schema=schema, extra=extra),
                    fh, indent=2, sort_keys=True,
                )
                fh.write("\n")
            print(f"wrote {path}")
    if args.chaos:
        rc = run_chaos_drill()
        if rc:
            return rc
    if args.service_load:
        rc = run_service_load(args.smoke)
        if rc:
            return rc
    if args.crash_drill:
        return run_crash_drill_twice()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
