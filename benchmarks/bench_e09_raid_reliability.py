"""E09 — RAID redundancy (paper §3.1.2).

Claim: "mission-critical storage systems use RAID so that the system can
continue to function even though one or more disks fail."  We regenerate
the survival-vs-scheme table: same disks, same failure process, ordered
survival RAID0 < RAID5 < RAID6 < RAID1, and the capacity price paid.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.redundancy.raid import RaidArray, RaidLevel


def run_experiment():
    n_disks, p, horizon, trials = 6, 0.02, 60, 400
    rows = []
    for level in (RaidLevel.RAID0, RaidLevel.RAID5, RaidLevel.RAID6,
                  RaidLevel.RAID1):
        array = RaidArray(n_disks, level, p, rebuild_periods=1)
        estimate = array.estimate_survival(horizon, trials, seed=11)
        rows.append({
            "level": level.value,
            "tolerated_failures": level.tolerated_failures(n_disks),
            "usable_capacity": level.data_disks(n_disks),
            "survival_prob": round(estimate.survival_probability, 3),
            "mean_lifetime": round(estimate.mean_lifetime, 1),
            "one_period_loss_p": round(
                array.single_period_loss_probability(), 6
            ),
        })
    return rows


def test_e09_raid_reliability(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE09: RAID survival over 60 periods, 6 disks, p_fail=0.02")
    print(render_table(rows))
    by_level = {row["level"]: row for row in rows}
    assert by_level["raid0"]["survival_prob"] < 0.1
    assert (by_level["raid5"]["survival_prob"]
            > by_level["raid0"]["survival_prob"] + 0.3)
    assert (by_level["raid6"]["survival_prob"]
            >= by_level["raid5"]["survival_prob"])
    assert (by_level["raid1"]["survival_prob"]
            >= by_level["raid6"]["survival_prob"])
    # and the redundancy is paid for in capacity
    assert by_level["raid0"]["usable_capacity"] == 6
    assert by_level["raid1"]["usable_capacity"] == 1
