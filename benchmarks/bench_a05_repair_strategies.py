"""A05 (ablation) — Repair-strategy choice in the DCSP model (§4.2).

The paper fixes 'flip one bit at a time' but not *which* bit.  This
ablation compares the library's repair procedures — optimal
(Hamming-nearest), greedy bit-flip, and min-conflicts — on factored vs
coarse (all-or-nothing) constraints, quantifying when greedy local
repair matches the optimum and when constraint granularity starves it
of gradient.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.recoverability import recovery_steps
from repro.csp.bitstring import BitString
from repro.csp.constraints import LinearConstraint, all_components_good
from repro.csp.problem import boolean_csp
from repro.csp.solvers import greedy_bitflip_repair, min_conflicts
from repro.rng import make_rng

N = 10
TRIALS = 30


def environments():
    names = [f"x{i}" for i in range(N)]
    factored = boolean_csp(N, [
        LinearConstraint([f"x{i}"], [1.0], ">=", 1.0, name=f"good{i}")
        for i in range(N)
    ])
    coarse = boolean_csp(N, [all_components_good(names)])
    return (("factored (per-component)", factored),
            ("coarse (all-or-nothing)", coarse))


def run_experiment():
    rng = make_rng(99)
    rows = []
    for env_label, csp in environments():
        optimal_steps, greedy_steps, mc_steps = [], [], []
        for _ in range(TRIALS):
            damaged = BitString(N, int(rng.integers(1, (1 << N) - 1)))
            start = csp.assignment_from_bits(damaged)
            optimal_steps.append(
                recovery_steps(damaged, [BitString.ones(N)])
            )
            greedy = greedy_bitflip_repair(csp, start, max_flips=400,
                                           seed=rng)
            greedy_steps.append(greedy.steps if greedy.success else np.nan)
            mc = min_conflicts(csp, start, max_steps=400, seed=rng)
            mc_steps.append(mc.steps if mc.success else np.nan)
        rows.append({
            "environment": env_label,
            "mean_optimal_steps": round(float(np.mean(optimal_steps)), 2),
            "mean_greedy_steps": round(float(np.nanmean(greedy_steps)), 2),
            "mean_minconflicts_steps": round(float(np.nanmean(mc_steps)), 2),
            "greedy_success": round(
                float(np.mean(~np.isnan(greedy_steps))), 3
            ),
        })
    return rows


def test_a05_repair_strategies(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nA05: repair cost by strategy and constraint granularity")
    print(render_table(rows))
    factored, coarse = rows
    # with per-component constraints greedy repair is optimal
    assert factored["mean_greedy_steps"] == \
        factored["mean_optimal_steps"]
    assert factored["greedy_success"] == 1.0
    # the coarse constraint starves local search of gradient: repair
    # degenerates to a random walk — usually succeeding eventually, at
    # many times the optimal cost (and sometimes timing out entirely)
    assert coarse["greedy_success"] >= 0.8
    assert coarse["mean_greedy_steps"] > 2 * coarse["mean_optimal_steps"]
