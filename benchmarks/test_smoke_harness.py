"""Tier-2 coverage for the benchmark harness itself.

``run_benchmarks.py --smoke`` runs every benchmark on tiny grids (via
``REPRO_BENCH_SMOKE``), so the harness — engine switching, tracing,
breakdowns, snapshot writing — is exercised end-to-end in seconds.
Run with ``PYTHONPATH=../src python -m pytest test_smoke_harness.py``
(or ``pytest benchmarks`` from the repo root).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.abspath(os.path.join(HERE, "..", "src"))


def test_smoke_mode_covers_the_harness(tmp_path):
    snapshot_path = tmp_path / "snapshot.json"
    networks_path = tmp_path / "networks.json"
    csp_path = tmp_path / "csp.json"
    trace_path = tmp_path / "events.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_BENCH_SMOKE", None)
    env.pop("REPRO_AGENT_ENGINE", None)
    env.pop("REPRO_NETWORK_ENGINE", None)
    env.pop("REPRO_CSP_ENGINE", None)

    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(HERE, "run_benchmarks.py"),
            "--smoke",
            "--scale-networks",
            "--json", str(snapshot_path),
            "--json-networks", str(networks_path),
            "--json-csp", str(csp_path),
            "--trace", str(trace_path),
        ],
        cwd=HERE,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,  # smoke grids + one subprocess per scale point
    )
    assert proc.returncode == 0, proc.stderr

    snapshot = json.loads(snapshot_path.read_text())
    assert snapshot["schema"] == 2
    assert snapshot["smoke"] is True
    assert snapshot["repeat"] == 1
    expected = {
        "e19_strategy_tradeoffs",
        "e23_granularity",
        "e07_diversity_survival",
        "e25_stickleback_readaptation",
    }
    assert set(snapshot["timings_s"]) == expected
    # engine-aware benchmarks carry both engine columns and a breakdown
    for name in ("e19_strategy_tradeoffs", "e23_granularity"):
        assert set(snapshot["timings_s"][name]) == {"object", "array"}
        for engine in ("object", "array"):
            breakdown = snapshot["breakdowns"][name][engine]
            assert breakdown["sim_runs"] > 0
            assert breakdown["sim_steps"] > 0
            assert breakdown["wall_s"] >= breakdown["sim_time_s"] >= 0
    assert snapshot["array_speedup"].keys() == {
        "e19_strategy_tradeoffs", "e23_granularity"
    }

    # the network-family snapshot covers the four network benchmarks,
    # each timed per engine with a net_* breakdown
    networks = json.loads(networks_path.read_text())
    assert networks["schema"] == 3
    net_expected = {
        "e21_scalefree_attack",
        "e22_epidemic_immunization",
        "a08_attack_family",
        "a10_network_recovery",
    }
    assert set(networks["timings_s"]) == net_expected
    assert networks["array_speedup"].keys() == net_expected
    for name in net_expected:
        assert set(networks["timings_s"][name]) == {"object", "array"}
        for engine in ("object", "array"):
            breakdown = networks["breakdowns"][name][engine]
            assert breakdown["net_time_s"] > 0
            assert breakdown["wall_s"] >= breakdown["net_time_s"]
    for engine in ("object", "array"):
        e21 = networks["breakdowns"]["e21_scalefree_attack"][engine]
        assert e21["net_curves"] == 4
        e22 = networks["breakdowns"]["e22_epidemic_immunization"][engine]
        assert e22["net_epidemic_runs"] > 0
        a10 = networks["breakdowns"]["a10_network_recovery"][engine]
        assert a10["net_healing_runs"] == 6

    # schema 3: the network scale axis (smoke ns) — per-engine caps
    # mean the top point carries only the out-of-core mmap column
    assert set(networks["scale_ns"]) == {"300", "1000", "3000"}
    assert set(networks["scale_ns"]["300"]) == {"object", "array", "mmap"}
    assert set(networks["scale_ns"]["1000"]) == {"array", "mmap"}
    assert set(networks["scale_ns"]["3000"]) == {"mmap"}
    for point in networks["scale_ns"].values():
        for stats in point.values():
            assert stats["build_s"] >= 0
            assert stats["percolation_s"] >= 0
            assert stats["sir_s"] >= 0
            assert stats["max_rss_mb"] > 0
            assert stats["giant_fraction_0"] > 0.9
            assert 0.0 < stats["critical_fraction"] <= 1.0
    # the array and mmap kernels are byte-identical, so their curve
    # landmarks agree wherever both engines cover a point
    for n in ("300", "1000"):
        point = networks["scale_ns"][n]
        assert (point["array"]["critical_fraction"]
                == point["mmap"]["critical_fraction"])
        assert (point["array"]["sir_ever_fraction"]
                == point["mmap"]["sir_ever_fraction"])
    assert networks["scale_budget_mb"] == 512
    assert networks["scale_mean_degree"] == 10.0

    # the CSP-family snapshot times object vs bit; E02/E03 exercise the
    # CSP kernels (checks/runs counted identically under both engines,
    # compiles only under bit), A01/A02 are the no-CSP controls
    csp = json.loads(csp_path.read_text())
    assert csp["schema"] == 3
    csp_expected = {
        "e02_spacecraft_recoverability",
        "e03_kmaintainability",
        "a01_seawall_design",
        "a02_capacity_margin",
    }
    assert set(csp["timings_s"]) == csp_expected
    assert csp["bit_speedup"].keys() == csp_expected
    for name in csp_expected:
        assert set(csp["timings_s"][name]) == {"object", "bit"}
    for engine in ("object", "bit"):
        e02 = csp["breakdowns"]["e02_spacecraft_recoverability"][engine]
        assert e02["csp_recover_checks"] > 0
        assert e02["csp_time_s"] > 0
        assert e02["csp_compiles"] == (8 if engine == "bit" else 0)
        e03 = csp["breakdowns"]["e03_kmaintainability"][engine]
        assert e03["csp_kmaintain_runs"] == 2
        a01 = csp["breakdowns"]["a01_seawall_design"][engine]
        assert a01["csp_time_s"] == 0
        assert a01["csp_compiles"] == 0

    # schema 3: the scale axis (smoke ns) times one recoverability
    # check per engine — all three engines cover the smoke points
    assert set(csp["scale_ns"]) == {"10", "12", "14"}
    for point in csp["scale_ns"].values():
        assert set(point) == {"object", "bit", "tiled"}
        for seconds in point.values():
            assert seconds >= 0
    assert set(csp["scale_tiled_speedup"]) == {"10", "12", "14"}

    # the trace stream is valid JSONL with bench start/end events
    events = [
        json.loads(line) for line in trace_path.read_text().splitlines()
    ]
    kinds = {e["event"] for e in events}
    assert "bench.start" in kinds and "bench.end" in kinds
    assert any(e["event"] == "sweep.start" for e in events)

    # the printed report includes the per-experiment breakdown table
    assert "per-experiment breakdown" in proc.stdout


def test_chaos_mode_runs_the_resilience_drill():
    """``--chaos --benchmarks ""`` runs only the self-healing drill."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for var in (
        "REPRO_AGENT_ENGINE",
        "REPRO_NETWORK_ENGINE",
        "REPRO_CSP_ENGINE",
        "REPRO_CHAOS_PLAN",
        "REPRO_CHAOS_STATE",
    ):
        env.pop(var, None)

    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(HERE, "run_benchmarks.py"),
            "--smoke",
            "--chaos",
            "--benchmarks", "",
        ],
        cwd=HERE,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "chaos drill passed" in proc.stdout
    assert "circuit breaker tripped" in proc.stdout
    assert "FAIL" not in proc.stdout
