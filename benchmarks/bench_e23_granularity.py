"""E23 — Granularity-relative resilience (paper §5.2).

Claim: "the definition of resilience should be relative to the
granularity of the system.  In general, the more coarse the system is,
it is easier to make the system resilient."  We regenerate the claim on
multi-species agent episodes: the same perturbation stream scored at
individual / species / ecosystem granularity, swept over shock severity.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, scaled

from repro.agents.arrayengine import make_engine
from repro.agents.environment import ConstraintEnvironment, ShockSchedule
from repro.agents.organism import Organism
from repro.agents.population import Population
from repro.analysis.granularity import granularity_scores
from repro.analysis.tables import render_table
from repro.csp.bitstring import BitString
from repro.rng import make_rng

GENOME = 16
N_SPECIES = 5
PER_SPECIES = 8
SEVERITIES = scaled((4, 8, 12), smoke=(4, 12))
N_EPISODES = scaled(15, smoke=3)


def run_episode(severity: int, seed: int):
    """One ecosystem episode; returns survival flags grouped by species."""
    rng = make_rng(seed)
    env = ConstraintEnvironment.random(GENOME, tolerance=2, seed=seed)
    organisms = []
    species_of = {}
    for s in range(N_SPECIES):
        # each species is a genome cluster with its own adaptation speed
        base = env.target.flip(
            *(int(i) for i in rng.choice(GENOME, size=s, replace=False))
        ) if s else env.target
        for _ in range(PER_SPECIES):
            org = Organism(genome=base, resources=3.0 + s,
                           adaptability=1 + s % 2)
            organisms.append(org)
            species_of[org.organism_id] = f"species-{s}"
    sim = make_engine(income_rate=1.1, living_cost=1.0,
                      replication_threshold=1e9, capacity=200)
    result = sim.run(
        Population(organisms), env, steps=60,
        shocks=ShockSchedule(period=20, severity=severity), seed=seed,
    )
    alive_ids = {o.organism_id for o in result.final_population.organisms}
    flags = {f"species-{s}": [] for s in range(N_SPECIES)}
    for org in organisms:
        flags[species_of[org.organism_id]].append(
            org.organism_id in alive_ids
        )
    return flags


def run_experiment():
    rows = []
    for severity in SEVERITIES:
        individual, species, weighted, ecosystem = [], [], [], []
        monotone = True
        for seed in range(N_EPISODES):
            scores = granularity_scores(run_episode(severity, seed))
            individual.append(scores.individual)
            species.append(scores.species)
            weighted.append(scores.species_weighted)
            ecosystem.append(scores.ecosystem)
            monotone &= scores.is_monotone()
        rows.append({
            "shock_severity": severity,
            "individual_survival": round(float(np.mean(individual)), 3),
            "species_survival": round(float(np.mean(species)), 3),
            "species_weighted": round(float(np.mean(weighted)), 3),
            "ecosystem_survival": round(float(np.mean(ecosystem)), 3),
            "all_monotone": monotone,
        })
    return rows


def test_e23_granularity(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE23: the same episodes scored at three granularities")
    print(render_table(rows))
    for row in rows:
        # coarser granularity is easier (the weighted chain is a theorem)
        assert row["all_monotone"]
        assert row["individual_survival"] <= row["species_weighted"] + 1e-9
        assert row["species_weighted"] <= row["ecosystem_survival"] + 1e-9
    # severity hits the fine scale hardest: the individual level loses
    # more survival than the ecosystem level across the sweep
    drop_individual = rows[0]["individual_survival"] - rows[-1]["individual_survival"]
    drop_ecosystem = rows[0]["ecosystem_survival"] - rows[-1]["ecosystem_survival"]
    assert drop_individual >= drop_ecosystem - 1e-9
