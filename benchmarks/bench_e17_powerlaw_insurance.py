"""E17 — Power-law X-events defeat insurance (paper §3.4.6).

Claim (Taleb, as relayed): "common statistics based on Gaussian
distribution, mean values, and standard deviations etc. do not work for
extreme events ... depending on the parameter, a power-law distribution
may not have a finite average value or a finite standard deviation.
This means that we can not rely on insurance because insurance is based
on the estimated average loss of multiple incidents."

We regenerate both halves: (a) sample-mean instability across the tail
exponent; (b) insurer ruin probability across the same sweep, with a
Gaussian baseline.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.shocks.distributions import GaussianMagnitudes, ParetoMagnitudes
from repro.shocks.heavytail import hill_estimator, mean_stability_ratio
from repro.shocks.insurance import Insurer


def run_experiment():
    insurer = Insurer(initial_capital=100.0, loading=0.25,
                      estimation_window=300)
    rows = []
    distributions = [
        ("gaussian", GaussianMagnitudes(mu=2.0, sigma=0.5)),
        ("pareto a=3.0", ParetoMagnitudes(alpha=3.0)),
        ("pareto a=1.5", ParetoMagnitudes(alpha=1.5)),
        ("pareto a=0.9", ParetoMagnitudes(alpha=0.9)),
    ]
    for label, dist in distributions:
        samples = dist.sample(50_000, seed=31)
        outcome = insurer.simulate(dist, periods=200, trials=300, seed=32)
        row = {
            "losses": label,
            "finite_mean": dist.has_finite_mean,
            "finite_variance": dist.has_finite_variance,
            "mean_instability": round(mean_stability_ratio(samples), 4),
            "ruin_probability": round(outcome.ruin_probability, 3),
        }
        if label.startswith("pareto"):
            row["hill_alpha"] = round(hill_estimator(samples), 2)
        rows.append(row)
    return rows


def test_e17_powerlaw_insurance(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE17: heavy tails break mean estimation and insurance")
    print(render_table(rows))
    by = {row["losses"]: row for row in rows}
    # thin tails: stable means, negligible ruin
    assert by["gaussian"]["mean_instability"] < 0.01
    assert by["gaussian"]["ruin_probability"] < 0.05
    assert by["pareto a=3.0"]["ruin_probability"] < 0.25
    # infinite-variance regime: means unstable, ruin grows
    assert by["pareto a=1.5"]["mean_instability"] > \
        by["pareto a=3.0"]["mean_instability"]
    # infinite-mean regime: catastrophic
    assert by["pareto a=0.9"]["mean_instability"] > 0.05
    assert by["pareto a=0.9"]["ruin_probability"] > 0.3
    # ruin ordering follows the tail exponent
    ruins = [by[k]["ruin_probability"] for k in
             ("gaussian", "pareto a=3.0", "pareto a=1.5", "pareto a=0.9")]
    assert all(b >= a - 0.02 for a, b in zip(ruins, ruins[1:]))
