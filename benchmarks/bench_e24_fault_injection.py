"""E24 — Tiger-team resilience testing (paper §5.3).

Claim: resilience can be tested black-box "by a so-called 'tiger team'
... a group of highly skilled people try to attack the system."  We
regenerate the methodology study on the spacecraft, where analytic
ground truth exists: exhaustive injection recovers the exact minimal k;
sampled campaigns lower-bound it, converging as the attack budget grows.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.faults.campaign import InjectionCampaign
from repro.faults.injector import SpacecraftUnderTest
from repro.faults.spec import FaultSpace
from repro.spacecraft.system import Spacecraft

N = 10
MAX_HITS = 4


def run_experiment():
    craft = Spacecraft(N)
    truth = craft.minimal_k(MAX_HITS)
    space = FaultSpace(N, MAX_HITS)
    rows = []
    for trials in (10, 50, 200):
        campaign = InjectionCampaign(
            SpacecraftUnderTest(craft, seed=1), deadline=N + 2
        )
        report = campaign.run_sampled(space, trials=trials, seed=trials)
        rows.append({
            "campaign": f"sampled-{trials}",
            "episodes": report.n_episodes,
            "recovery_rate": report.recovery_rate,
            "empirical_k": report.empirical_k,
            "analytic_k": truth,
            "verdict_correct_at_k": report.claims_k_resilient(truth),
        })
    exhaustive = InjectionCampaign(
        SpacecraftUnderTest(craft, seed=2), deadline=N + 2
    ).run_exhaustive(space)
    rows.append({
        "campaign": "exhaustive",
        "episodes": exhaustive.n_episodes,
        "recovery_rate": exhaustive.recovery_rate,
        "empirical_k": exhaustive.empirical_k,
        "analytic_k": truth,
        "verdict_correct_at_k": exhaustive.claims_k_resilient(truth),
    })
    return rows


def test_e24_fault_injection(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE24: tiger-team campaigns vs analytic k-recoverability")
    print(render_table(rows))
    truth = rows[0]["analytic_k"]
    for row in rows:
        assert row["recovery_rate"] == 1.0
        assert row["verdict_correct_at_k"]
        # sampling can only under-estimate the worst case
        assert row["empirical_k"] <= truth
    # the exhaustive campaign finds the exact bound
    assert rows[-1]["empirical_k"] == truth
    # larger sampled campaigns approach it monotonically
    empiricals = [row["empirical_k"] for row in rows[:-1]]
    assert all(b >= a for a, b in zip(empiricals, empiricals[1:]))
