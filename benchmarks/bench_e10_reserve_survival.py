"""E10 — Universal-resource reserves (paper §3.1.3).

Claim: "every major auto company in Japan survived the crisis.  One of
the reasons of their survival was their monetary reserve that could
compensate the temporary loss of the revenue."  We regenerate survival
through a Tohoku-style regional outage as a function of reserve size and
of supplier multi-sourcing — the two redundancy levers §3.1.3 names.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.management.supplychain import (
    Manufacturer,
    RegionalDisaster,
    Supplier,
    simulate_supply_chain,
)


def firm(reserve: float, multi_source: bool) -> Manufacturer:
    suppliers = [
        Supplier("engine-tohoku", "engine", "tohoku"),
        Supplier("body-tohoku", "body", "tohoku"),
        Supplier("chip-tohoku", "chip", "tohoku"),
    ]
    if multi_source:
        suppliers.append(Supplier("chip-kyushu", "chip", "kyushu"))
    return Manufacturer(
        required_parts=("engine", "body", "chip"),
        suppliers=tuple(suppliers),
        revenue_per_period=10.0,
        fixed_cost_per_period=6.0,
        initial_reserve=reserve,
    )


def run_experiment():
    quake = [RegionalDisaster(time=0, region="tohoku", outage=8)]
    rows = []
    for reserve in (0.0, 12.0, 24.0, 48.0, 96.0):
        for multi in (False, True):
            outcome = simulate_supply_chain(
                firm(reserve, multi), quake, horizon=60
            )
            rows.append({
                "reserve": reserve,
                "multi_sourced_chip": multi,
                "survived": outcome.survived,
                "periods_halted": outcome.periods_halted,
                "periods_survived": outcome.periods_survived,
            })
    return rows


def test_e10_reserve_survival(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE10: surviving a regional outage: reserve size x multi-sourcing")
    print(render_table(rows))
    single = {r["reserve"]: r for r in rows if not r["multi_sourced_chip"]}
    # the outage burns 8 periods x 6 cost = 48: survival needs reserve >= 48
    assert not single[0.0]["survived"]
    assert not single[24.0]["survived"]
    assert single[48.0]["survived"]
    assert single[96.0]["survived"]
    # deeper reserves keep the firm alive strictly longer
    lived = [single[r]["periods_survived"] for r in (0.0, 12.0, 24.0)]
    assert lived == sorted(lived) and lived[0] < lived[-1]
    # multi-sourcing alone is insufficient here (engine/body still halt)
    multi = {r["reserve"]: r for r in rows if r["multi_sourced_chip"]}
    assert not multi[0.0]["survived"]
    assert multi[48.0]["survived"]
