"""A09 (ablation) — Situation-based security policy switching (§3.4.6, [11]).

The paper cites its own "Ichigan security — a security architecture that
enables situation-based policy switching."  We regenerate the claim: over
a horizon of mostly peace punctuated by attack campaigns, the switching
architecture beats both static stances — always-open bleeds during
campaigns, always-lockdown taxes every peaceful day.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.modes.security import (
    LOCKDOWN_POLICY,
    OPEN_POLICY,
    AttackCampaign,
    SituationalController,
    simulate_security,
)

CAMPAIGNS = (
    AttackCampaign(start=80, length=25, damage=3.0),
    AttackCampaign(start=220, length=15, damage=4.0),
)


def run_experiment():
    rows = []
    for label, make_controller in (
        ("always-open", lambda: SituationalController.static(OPEN_POLICY)),
        ("always-lockdown",
         lambda: SituationalController.static(LOCKDOWN_POLICY)),
        ("situational (Ichigan)", lambda: SituationalController()),
    ):
        values, damages, lockdowns = [], [], []
        for seed in range(20):
            outcome = simulate_security(
                make_controller(), CAMPAIGNS, horizon=300,
                base_attack_p=0.02, seed=seed,
            )
            values.append(outcome.total_value)
            damages.append(outcome.damage_taken)
            lockdowns.append(outcome.lockdown_periods)
        rows.append({
            "architecture": label,
            "mean_total_value": round(float(np.mean(values)), 1),
            "mean_damage": round(float(np.mean(damages)), 1),
            "mean_lockdown_periods": round(float(np.mean(lockdowns)), 1),
        })
    return rows


def test_a09_security_switching(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nA09: security value under attack campaigns, by architecture")
    print(render_table(rows))
    by = {row["architecture"]: row for row in rows}
    switching = by["situational (Ichigan)"]
    assert switching["mean_total_value"] > by["always-open"]["mean_total_value"]
    assert switching["mean_total_value"] > \
        by["always-lockdown"]["mean_total_value"]
    # the switcher locks down for roughly the campaign windows only
    assert 20 < switching["mean_lockdown_periods"] < 120
    # and takes far less damage than the open stance
    assert switching["mean_damage"] < by["always-open"]["mean_damage"] / 2
