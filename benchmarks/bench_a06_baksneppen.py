"""A06 (ablation) — Bak–Sneppen coevolution (paper §4.5 × §3.2).

Bak's criticality claim applied to the paper's own evolutionary setting:
a coevolving ecosystem self-organizes to a critical fitness threshold
with no parameter tuning, and change arrives as punctuated-equilibrium
avalanches with a heavy-tailed size distribution — extinction cascades
in a decentralized system, the §4.5 risk in biological clothes.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.soc.avalanche import fit_power_law
from repro.soc.baksneppen import BakSneppenModel


def run_experiment():
    rows = []
    for n_species in (100, 200):
        model = BakSneppenModel(n_species)
        run = model.run(steps=30_000, warmup=80_000,
                        avalanche_threshold=0.6, seed=n_species)
        sizes = run.avalanche_sizes[run.avalanche_sizes > 0]
        fit = fit_power_law(sizes.astype(float), n_bins=10)
        rows.append({
            "n_species": n_species,
            "threshold_estimate": round(run.threshold_estimate, 3),
            "frac_above_0.6": round(
                float(np.mean(run.final_fitness > 0.6)), 3
            ),
            "n_avalanches": len(sizes),
            "max_avalanche": int(sizes.max()),
            "fitted_exponent": round(fit.exponent, 2),
            "r_squared": round(fit.r_squared, 3),
        })
    return rows


def test_a06_baksneppen(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nA06: Bak-Sneppen self-organized criticality")
    print(render_table(rows))
    for row in rows:
        # self-organized band near the known ~0.66 ring threshold
        assert row["threshold_estimate"] > 0.5
        assert row["frac_above_0.6"] > 0.75
        # punctuated equilibrium: huge avalanches amid quiescence
        assert row["max_avalanche"] > 50
        # avalanche sizes are heavy-tailed (approx. power law)
        assert row["r_squared"] > 0.75
