"""E13 — Forest-fire suppression ablation (paper §3.2.3).

Claim: "it is a common wisdom not to extinguish small forest fires and
let the patch of the forest rejuvenate.  Otherwise, every part of the
forest gets older and dryer, and the risk of a large-scale forest fire
would much increase."  We regenerate the suppression sweep on the
Drossel–Schwabl model: suppressing small fires raises fuel density and
the size of the worst escaped fire.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis.tables import render_table
from repro.soc.forestfire import ForestFireModel, SuppressionPolicy

SIDE = 24
GRID = SIDE * SIDE


def run_policy(threshold: int, seed: int):
    model = ForestFireModel(
        SIDE, growth_p=0.08, lightning_f=0.01,
        policy=SuppressionPolicy(threshold),
    )
    events = model.run(250, seed=seed, warmup=60)
    burned = [e.cluster_size for e in events if e.burned]
    biggest = max(burned, default=0)
    big_fires = sum(1 for b in burned if b > GRID * 0.25)
    return model.tree_density, biggest, big_fires


def run_experiment():
    rows = []
    for threshold in (0, 30, 100, 250):
        densities, biggests, bigs = [], [], []
        for seed in range(6):
            density, biggest, big_fires = run_policy(threshold, seed)
            densities.append(density)
            biggests.append(biggest)
            bigs.append(big_fires)
        rows.append({
            "suppress_below": threshold,
            "mean_tree_density": round(float(np.mean(densities)), 3),
            "mean_biggest_fire": round(float(np.mean(biggests)), 1),
            "mean_big_fires": round(float(np.mean(bigs)), 2),
        })
    return rows


def test_e13_forest_fire_suppression(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE13: fire suppression vs let-it-burn (24x24 Drossel-Schwabl)")
    print(render_table(rows))
    let_burn, heavy = rows[0], rows[-1]
    # suppression accumulates fuel ("older and dryer")
    assert heavy["mean_tree_density"] > let_burn["mean_tree_density"] + 0.1
    # and the worst escaped fire grows
    assert heavy["mean_biggest_fire"] > let_burn["mean_biggest_fire"]
