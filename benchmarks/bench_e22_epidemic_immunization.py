"""E22 — Hub-seeking viruses and immunization (paper §5.1).

Claim: on scale-free networks the hub connectivity that gives
failure-robustness "becomes a vulnerability" for spreading processes.
We regenerate the immunization comparison: SIR attack rates on a BA
network under no / random / targeted immunization at equal coverage —
targeted hub protection contains the epidemic at a fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, scaled

from repro.analysis.tables import render_table
from repro.networks.epidemics import SIRModel, immunize
from repro.networks.generators import barabasi_albert

N = scaled(600, 100)
BETA, GAMMA = 0.3, 0.25
RUNS = scaled(8, 2)


def mean_attack_rate(graph, immune, seed0):
    seeds = [n for n in graph.nodes() if n not in immune][:3]
    rates = []
    for s in range(RUNS):
        model = SIRModel(graph, beta=BETA, gamma=GAMMA, immune=immune)
        result = model.run(seeds, seed=seed0 + s)
        rates.append(result.attack_rate(graph.n_nodes))
    return float(np.mean(rates))


def setup():
    """Generate the substrate network outside the timed region."""
    return barabasi_albert(N, 2, seed=7)


def run_experiment(graph=None):
    if graph is None:
        graph = setup()
    rows = []
    for label, strategy, coverage in (
        ("no immunization", None, 0.0),
        ("random 10%", "random", 0.10),
        ("random 30%", "random", 0.30),
        ("targeted 10%", "targeted", 0.10),
    ):
        immune = (
            frozenset() if strategy is None
            else immunize(graph, coverage, strategy, seed=8)
        )
        rows.append({
            "strategy": label,
            "coverage": coverage,
            "mean_attack_rate": round(
                mean_attack_rate(graph, immune, seed0=100), 3
            ),
        })
    return rows


def test_e22_epidemic_immunization(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE22: SIR attack rate on a scale-free network vs immunization")
    print(render_table(rows))
    by = {row["strategy"]: row["mean_attack_rate"] for row in rows}
    # the unprotected scale-free network burns
    assert by["no immunization"] > 0.4
    # random immunization at 10% barely helps
    assert by["random 10%"] > by["no immunization"] * 0.6
    # targeted 10% beats random 30%: hubs are the spreaders
    assert by["targeted 10%"] < by["random 30%"]
    assert by["targeted 10%"] < by["no immunization"] / 2
