"""E14 — Investment diversification (paper §3.2.3).

Claim: concentrating on the highest-expected-return stock "is the
optimal solution if that is the goal.  It is also a risky strategy
because the investor loses all the money if the invested company
bankrupts.  By diversifying the investments, the investor can
significantly reduce the risk of catastrophic loss in exchange for a
slightly lower expected return."  We regenerate the return-vs-ruin
tradeoff across the diversification path.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.management.portfolio import Asset, Portfolio, simulate_portfolio


def make_assets():
    # asset 0 has the highest drift; all carry a bankruptcy hazard
    return tuple(
        Asset(f"a{i}", mean_return=0.10 - 0.005 * i, volatility=0.25,
              bankruptcy_p=0.008)
        for i in range(8)
    )


def run_experiment():
    assets = make_assets()
    rows = []
    portfolios = [
        ("concentrated (best stock)", Portfolio.concentrated(assets, 0)),
        ("top-2", Portfolio(assets, (0.5, 0.5) + (0.0,) * 6)),
        ("top-4", Portfolio(assets, (0.25,) * 4 + (0.0,) * 4)),
        ("equal-weight (1/8)", Portfolio.equal_weight(assets)),
    ]
    for label, portfolio in portfolios:
        outcome = simulate_portfolio(
            portfolio, periods=120, trials=1500, seed=21
        )
        rows.append({
            "portfolio": label,
            "expected_return_pp": round(100 * portfolio.expected_return(), 3),
            "mean_final_wealth": round(outcome.mean_final_wealth, 3),
            "median_final_wealth": round(outcome.median_final_wealth, 3),
            "ruin_probability": round(outcome.ruin_probability, 4),
        })
    return rows


def test_e14_portfolio_diversification(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE14: expected return vs catastrophic-loss risk")
    print(render_table(rows))
    concentrated, *_, diversified = rows
    # expected return declines only slightly along the path...
    returns = [row["expected_return_pp"] for row in rows]
    assert all(a >= b for a, b in zip(returns, returns[1:]))
    assert returns[0] - returns[-1] < 2.5  # "slightly lower"
    # ...but ruin probability collapses
    ruins = [row["ruin_probability"] for row in rows]
    assert all(a >= b - 0.02 for a, b in zip(ruins, ruins[1:]))
    assert diversified["ruin_probability"] < concentrated["ruin_probability"] / 4
