"""E15 — Adaptability via feedback / MAPE loops (paper §3.3.2).

Claim: autonomic (MAPE) systems "sense the changes and react
automatically to handle the situations", and "a quicker adaptation is
realized by feedback".  We regenerate the recovery dynamics of a DCSP
system whose environment shifts: adaptation speed (bits repaired per
step — the §4.4 adaptability dial) directly sets the Bruneau loss, and a
system with no feedback (0 flips/step) never recovers.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.bruneau import assess
from repro.csp.constraints import LinearConstraint
from repro.csp.dynamic import DCSPSimulator, DynamicCSP, EnvironmentShift
from repro.csp.variables import boolean_variables


def factored(n, value):
    op = ">=" if value else "<="
    return tuple(
        LinearConstraint([f"x{i}"], [1.0], op, float(value), name=f"c{i}")
        for i in range(n)
    )


def run_experiment():
    n = 12
    rows = []
    for flips in (0, 1, 2, 4):
        dynamic = DynamicCSP(
            boolean_variables(n),
            factored(n, 1),
            [EnvironmentShift(5, factored(n, 0), label="regime-change")],
        )
        simulator = DCSPSimulator(dynamic, flips_per_step=flips)
        run = simulator.run(
            {f"x{i}": 1 for i in range(n)}, horizon=40, seed=0
        )
        a = assess(run.trace)
        rows.append({
            "flips_per_step": flips,
            "recovered": a.recovered,
            "recovery_time": a.recovery_time,
            "bruneau_loss": round(a.loss, 1),
        })
    return rows


def test_e15_mape_feedback(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nE15: recovery vs adaptation speed after an environment shift")
    print(render_table(rows))
    frozen = rows[0]
    assert not frozen["recovered"]  # no feedback, no recovery
    adaptive = rows[1:]
    assert all(row["recovered"] for row in adaptive)
    times = [row["recovery_time"] for row in adaptive]
    losses = [row["bruneau_loss"] for row in adaptive]
    # faster adaptation -> shorter recovery and smaller triangle
    assert times == sorted(times, reverse=True)
    assert losses == sorted(losses, reverse=True)
    assert frozen["bruneau_loss"] > max(losses) * 2
