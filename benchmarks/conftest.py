"""Shared helpers for the experiment benchmarks.

Each ``bench_eXX_*.py`` regenerates one paper claim (see DESIGN.md §3 and
EXPERIMENTS.md).  Benchmarks run the experiment exactly once under
pytest-benchmark timing (``run_once``), print the reproduced series/table,
and assert its qualitative shape.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run an experiment exactly once under benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
