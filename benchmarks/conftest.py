"""Shared helpers for the experiment benchmarks.

Each ``bench_eXX_*.py`` regenerates one paper claim (see DESIGN.md §3 and
EXPERIMENTS.md).  Benchmarks run the experiment exactly once under
pytest-benchmark timing (``run_once``), print the reproduced series/table,
and assert its qualitative shape.
"""

from __future__ import annotations

import os


def run_once(benchmark, fn):
    """Run an experiment exactly once under benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def scaled(normal, smoke):
    """Pick the smoke-sized value when ``REPRO_BENCH_SMOKE`` is set.

    ``run_benchmarks.py --smoke`` sets the variable before importing the
    benchmark modules, shrinking their module-level grid constants so
    the whole harness finishes in seconds.  Under pytest the variable is
    unset and experiments run at full scale (the asserted shapes only
    hold there).
    """
    return smoke if os.environ.get("REPRO_BENCH_SMOKE") else normal
