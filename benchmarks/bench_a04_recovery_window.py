"""A04 (ablation) — Dropping the recovery-window assumption (§4.2/§4.3).

The paper's k-recoverability assumes no second shock lands during the
k-step recovery ("it will not have another component failure until time
t + k").  This ablation measures what the guarantee is worth without
that assumption: a provably k-maintainable policy is run while exogenous
aftershocks strike mid-recovery with increasing probability.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.planning.kmaintain import require_policy
from repro.planning.stochastic import evaluate_under_interference
from repro.planning.transition import TransitionSystem


def damaged_chain(n=7):
    """Repair walks damage down to 0; aftershocks push it back up."""
    ts = TransitionSystem(states=frozenset(range(n)))
    for s in range(1, n):
        ts.add_agent_action("repair", s, [s - 1])
    ts.add_exo_action("hit", 0, [n - 1])
    for s in range(n - 1):
        ts.add_exo_action("aftershock", s, [min(s + 2, n - 1)])
    return ts


def run_experiment():
    ts = damaged_chain(7)
    policy = require_policy(ts, [0], [0], k=6)
    rows = []
    for p in (0.0, 0.1, 0.3, 0.5, 0.8):
        verdict = evaluate_under_interference(
            ts, policy, [0], interference_p=p, budget=30, episodes=800,
            seed=17,
        )
        rows.append({
            "interference_p": p,
            "recovery_rate": round(verdict.recovery_rate, 3),
            "mean_steps": round(verdict.mean_steps, 2),
            "worst_steps": verdict.worst_steps,
            "windowed_k": policy.k,
        })
    return rows


def test_a04_recovery_window(benchmark):
    rows = run_once(benchmark, run_experiment)
    print("\nA04: k-maintainable policy under mid-recovery aftershocks")
    print(render_table(rows))
    quiet = rows[0]
    # with the paper's assumption the guarantee is exact
    assert quiet["recovery_rate"] == 1.0
    assert quiet["worst_steps"] <= quiet["windowed_k"]
    # interference degrades recovery monotonically...
    rates = [row["recovery_rate"] for row in rows]
    assert all(b <= a + 0.02 for a, b in zip(rates, rates[1:]))
    # ...and stretches recoveries past the windowed k
    assert rows[2]["mean_steps"] > quiet["mean_steps"]
    assert any(
        row["worst_steps"] is not None
        and row["worst_steps"] > row["windowed_k"]
        for row in rows[1:]
    )
    # heavy interference defeats the windowed guarantee outright
    assert rows[-1]["recovery_rate"] < 0.9
