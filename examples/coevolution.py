"""Coevolution, punctuated equilibrium, and granularity (§4.5, §5.2).

Runs the Bak–Sneppen coevolution model to its self-organized critical
state, then runs a digital-organism population through a shock and scores
the same episode at individual / species / ecosystem granularity using
lineage-aware species clustering.

Run:  python examples/coevolution.py
"""

from __future__ import annotations

import numpy as np

from repro.agents import (
    ConstraintEnvironment,
    EvolutionSimulator,
    Organism,
    Population,
    ShockSchedule,
    survival_flags_by_species,
)
from repro.analysis import granularity_scores
from repro.rng import make_rng
from repro.soc import BakSneppenModel, fit_power_law


def main() -> None:
    # --- Bak-Sneppen: criticality in a coevolving ecosystem ------------
    model = BakSneppenModel(150)
    run = model.run(steps=20_000, warmup=60_000, avalanche_threshold=0.6,
                    seed=0)
    print("Bak-Sneppen after self-organization:")
    print(f"  fitness threshold estimate : {run.threshold_estimate:.3f}")
    print(f"  species above 0.6          : "
          f"{np.mean(run.final_fitness > 0.6):.0%}")
    sizes = run.avalanche_sizes[run.avalanche_sizes > 0]
    fit = fit_power_law(sizes.astype(float), n_bins=10)
    print(f"  avalanches: {len(sizes)}, largest {sizes.max()} steps, "
          f"size exponent ~{fit.exponent:.2f} (R^2 {fit.r_squared:.2f})")

    # --- granularity scoring of a shocked agent population --------------
    # five species with graded endowments: unequal fates under one shock
    rng = make_rng(1)
    env = ConstraintEnvironment.random(16, tolerance=2, seed=1)
    organisms = []
    for species in range(5):
        base = env.target if species == 0 else env.target.flip(
            *(int(i) for i in rng.choice(16, size=species, replace=False))
        )
        for _ in range(8):
            organisms.append(Organism(genome=base, resources=3.0 + species,
                                      adaptability=1 + species % 2))
    population = Population(organisms)
    simulator = EvolutionSimulator(income_rate=1.1, living_cost=1.0,
                                   replication_threshold=1e9, capacity=200)
    result = simulator.run(population, env, steps=60,
                           shocks=ShockSchedule(period=20, severity=12),
                           seed=3)
    flags = survival_flags_by_species(population, result.final_population,
                                      radius=2)
    scores = granularity_scores(flags)
    print("\nthe same shock episode, scored at three granularities:")
    print(f"  individual survival : {scores.individual:.2f}")
    print(f"  species survival    : {scores.species:.2f} "
          f"(size-weighted {scores.species_weighted:.2f})")
    print(f"  ecosystem survival  : {scores.ecosystem:.0f}")
    print(f"  coarser is easier   : {scores.is_monotone()}")


if __name__ == "__main__":
    main()
