"""Quickstart: the Systems Resilience model end to end.

Reproduces the paper's worked example (§4.2) in a few lines: an
n-component spacecraft under space-debris damage, its exact
k-recoverability, a K-maintainable repair policy, a simulated mission,
and the Bruneau resilience assessment of the resulting quality trace.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import assess
from repro.faults import FaultSpace, InjectionCampaign, SpacecraftUnderTest
from repro.planning import construct_policy
from repro.spacecraft import DebrisStream, Spacecraft


def main() -> None:
    # --- the paper's example: C = 1^n, debris fails <= k components ----
    craft = Spacecraft(n_components=6, repairs_per_step=1)
    for hits in (1, 2, 3):
        print(f"debris failing <= {hits} components  ->  minimal k ="
              f" {craft.minimal_k(hits)}  "
              f"(k-recoverable at k={hits}: "
              f"{craft.is_k_recoverable(hits, hits)})")

    # --- the same fact via Baral-Eiter K-maintainability (§4.3) --------
    system = craft.to_transition_system(max_debris_hits=2)
    goals = craft.fit_states()
    result = construct_policy(system, goals, goals, k=2)
    print(f"\nK-maintainability: a 2-maintainable policy "
          f"{'exists' if result.maintainable else 'does not exist'} "
          f"covering {len(result.envelope)} reachable states")

    # --- and via black-box tiger-team testing (§5.3) -------------------
    campaign = InjectionCampaign(SpacecraftUnderTest(craft, seed=0),
                                 deadline=10)
    report = campaign.run_exhaustive(FaultSpace(craft.n, 2))
    print(f"fault injection: {report.n_episodes} exhaustive attacks, "
          f"empirical k = {report.empirical_k}")

    # --- fly a mission and score it with the Bruneau metric (§4.1) -----
    debris = DebrisStream(craft.n, max_hits=2, hit_probability=0.08,
                          recovery_window=3)
    mission = craft.fly(horizon=200, debris=debris, seed=42)
    assessment = assess(mission.trace)
    print(f"\nmission: {len(mission.hits)} debris hits, "
          f"worst recovery {mission.worst_recovery} steps")
    print(f"Bruneau loss R = {assessment.loss:.1f}, "
          f"drop depth {assessment.drop_depth:.1f}, "
          f"recovered: {assessment.recovered}")


if __name__ == "__main__":
    main()
