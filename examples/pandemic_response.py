"""Active resilience for a pandemic-like event (paper §3.4).

Chains the active-resilience toolkit on one synthetic scenario: a
case-count indicator approaches a tipping point; early-warning signals
fire; a WHO-style staged alert escalates; the mode controller declares
emergency; and stakeholders deliberate the recovery target.

Run:  python examples/pandemic_response.py
"""

from __future__ import annotations

import numpy as np

from repro.anticipation import (
    SaddleNodeSystem,
    compute_indicators,
    warning_verdict,
    who_pandemic_scale,
)
from repro.modes import (
    ModeController,
    RecoveryOption,
    Stakeholder,
    deliberate,
)


def main() -> None:
    # --- anticipation: early-warning signals before the outbreak tips --
    system = SaddleNodeSystem(noise=0.06, dt=0.05)
    series = system.ramp_to_tipping(20_000, a_start=-0.5, a_end=0.45, seed=3)
    pre = series.pre_tip(margin=100)[-5000:]
    indicators = compute_indicators(pre, window=800)
    print("early-warning analysis on pre-tip data:")
    print(f"  variance trend (Kendall tau)       : "
          f"{indicators.variance_trend:+.2f}")
    print(f"  autocorrelation trend (Kendall tau): "
          f"{indicators.autocorrelation_trend:+.2f}")
    print(f"  warning issued: "
          f"{warning_verdict(indicators, tau_threshold=0.3)}")

    # --- staged alerts over the case-count indicator --------------------
    alerts = who_pandemic_scale(base_threshold=1.0, ratio=2.0)
    cases = np.exp(np.linspace(0.0, 4.2, 30))  # exponential outbreak
    levels = alerts.run(cases)
    escalations = [i for i, (a, b) in enumerate(zip([0] + levels, levels))
                   if b > a]
    print(f"\nstaged alerts: final phase {levels[-1]}, "
          f"escalations at observations {escalations}")

    # --- mode switching on damage ---------------------------------------
    controller = ModeController(declare_at=20.0, stand_down_at=5.0)
    damage_path = [0, 3, 12, 28, 35, 18, 9, 4, 1]
    modes = [controller.policy_for(d).name for d in damage_path]
    print("\nmode controller over the damage path:")
    for damage, mode in zip(damage_path, modes):
        print(f"  damage {damage:3d} -> {mode}")

    # --- consensus building on the rebuild target (§3.4.5) --------------
    result = deliberate(
        stakeholders=[
            Stakeholder("miyagi", {"industry": 0.9, "wellness": 0.3},
                        flexibility=0.35),
            Stakeholder("iwate", {"industry": 0.2, "wellness": 0.9},
                        flexibility=0.35),
            Stakeholder("national", {"industry": 0.6, "wellness": 0.6},
                        flexibility=0.5),
        ],
        options=[RecoveryOption("industry", "rebuild the industry base"),
                 RecoveryOption("wellness", "prioritize resident wellness")],
        required_share=1.0,
    )
    print(f"\nconsensus: agreed={result.agreed} on "
          f"{result.option.name if result.option else None} "
          f"after {result.rounds} rounds "
          f"(approval {result.approval:.0%})")


if __name__ == "__main__":
    main()
