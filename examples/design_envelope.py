"""Designing against X-events: envelopes + scenario planning (§3.4).

How high should the sea wall be?  The paper's numbers — the 5.7 m design
envelope, the 14 m tsunami, the 40 m historical record — frame the
problem: return levels of a power-law hazard grow without bound, so the
optimal wall is finite and X-event risk remains.  Scenario planning then
chooses how to handle the residual: expected value trusts the
probabilities; minimax regret hedges when they are untrustworthy.

Run:  python examples/design_envelope.py
"""

from __future__ import annotations

import numpy as np

from repro.anticipation import ActionProfile, Scenario, ScenarioAnalysis
from repro.shocks import (
    DesignProblem,
    ParetoMagnitudes,
    design_height_for_return_period,
)


def main() -> None:
    hazard = ParetoMagnitudes(alpha=1.8, xmin=1.0)
    print("return levels of the tsunami hazard (0.2 events/year):")
    for years in (10, 100, 1000, 10_000):
        h = design_height_for_return_period(hazard, 0.2, years)
        print(f"  once in {years:6d} years: {h:6.1f} m")

    problem = DesignProblem(
        magnitudes=hazard, events_per_year=0.2, horizon_years=100.0,
        build_cost_per_unit=2.0, build_cost_exponent=1.5, breach_loss=500.0,
    )
    print("\nwall economics over a 100-year horizon:")
    for height in (2.0, 5.7, 14.0, 40.0):
        e = problem.evaluate(height)
        print(f"  {height:5.1f} m wall: build {e.build_cost:8.1f} + "
              f"expected breach loss {e.expected_breach_loss:8.1f} = "
              f"total {e.total_cost:8.1f}")
    best = problem.optimize(np.linspace(1.0, 40.0, 118))
    print(f"  optimum: {best.height:.1f} m (total {best.total_cost:.1f}, "
          f"residual breach probability {best.breach_probability:.3f})")

    print("\nscenario planning for the residual risk:")
    analysis = ScenarioAnalysis(
        scenarios=[Scenario("no-breach", 0.9), Scenario("breach", 0.1)],
        actions=[
            ActionProfile("wall-only",
                          {"no-breach": 100.0, "breach": -400.0}),
            ActionProfile("wall+evacuation-plan",
                          {"no-breach": 90.0, "breach": -60.0}),
            ActionProfile("wall+insurance",
                          {"no-breach": 80.0, "breach": -20.0}),
        ],
    )
    for row in analysis.table():
        print(f"  {row['action']:22s} EV={row['expected_value']:7.1f} "
              f"worst={row['worst_case']:7.1f} "
              f"max-regret={row['max_regret']:7.1f}")
    print(f"  EV rule picks        : "
          f"{analysis.best_by_expected_value().name}")
    print(f"  maximin picks        : {analysis.best_by_worst_case().name}")
    print(f"  minimax regret picks : "
          f"{analysis.best_by_minimax_regret().name}")


if __name__ == "__main__":
    main()
