"""Redundancy and X-events in a supply chain (paper §3.1.3, §3.4.6).

A manufacturer faces a Tohoku-style regional disaster: we compare
reserve sizes and multi-sourcing, then zoom out to the insurer's view of
the same loss process under thin vs heavy tails — the reason the paper
says reserves, not insurance, are the robust answer to X-events.

Run:  python examples/supply_chain_xevents.py
"""

from __future__ import annotations

from repro.management import (
    Manufacturer,
    RegionalDisaster,
    Supplier,
    simulate_supply_chain,
)
from repro.shocks import (
    GaussianMagnitudes,
    Insurer,
    ParetoMagnitudes,
    mean_stability_ratio,
)


def firm(reserve: float, multi_source: bool) -> Manufacturer:
    suppliers = [
        Supplier("engine-tohoku", "engine", "tohoku"),
        Supplier("body-tohoku", "body", "tohoku"),
    ]
    if multi_source:
        suppliers += [
            Supplier("engine-kyushu", "engine", "kyushu"),
            Supplier("body-kyushu", "body", "kyushu"),
        ]
    return Manufacturer(
        required_parts=("engine", "body"),
        suppliers=tuple(suppliers),
        revenue_per_period=10.0,
        fixed_cost_per_period=6.0,
        initial_reserve=reserve,
    )


def main() -> None:
    quake = [RegionalDisaster(time=0, region="tohoku", outage=8)]
    print("a regional disaster halts all Tohoku suppliers for 8 periods:")
    for reserve in (0.0, 24.0, 48.0):
        for multi in (False, True):
            outcome = simulate_supply_chain(firm(reserve, multi), quake,
                                            horizon=60)
            print(f"  reserve {reserve:5.0f}, multi-sourced={multi!s:5s}: "
                  f"survived={outcome.survived!s:5s} "
                  f"(halted {outcome.periods_halted} periods)")

    print("\nwhy not just insure?  sample-mean stability of the loss "
          "process:")
    for label, dist in (
        ("gaussian losses     ", GaussianMagnitudes(mu=2.0, sigma=0.5)),
        ("pareto alpha=1.5    ", ParetoMagnitudes(alpha=1.5)),
        ("pareto alpha=0.9    ", ParetoMagnitudes(alpha=0.9)),
    ):
        samples = dist.sample(30_000, seed=1)
        print(f"  {label}: finite mean={dist.has_finite_mean!s:5s} "
              f"mean instability={mean_stability_ratio(samples):8.4f}")

    insurer = Insurer(initial_capital=100.0, loading=0.25)
    print("\ninsurer ruin probability over 200 periods:")
    for label, dist in (
        ("gaussian", GaussianMagnitudes(mu=2.0, sigma=0.5)),
        ("pareto a=0.9", ParetoMagnitudes(alpha=0.9)),
    ):
        outcome = insurer.simulate(dist, periods=200, trials=300, seed=2)
        print(f"  {label:12s}: ruin probability "
              f"{outcome.ruin_probability:.2f}")


if __name__ == "__main__":
    main()
