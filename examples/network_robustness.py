"""Robust-yet-fragile networks and containment (paper §4.5, §5.1).

Walks the network substrate: scale-free vs random graphs under random
failure and targeted hub attack, hub-seeking epidemics with targeted
immunization, and cascade containment by modularization.

Run:  python examples/network_robustness.py
"""

from __future__ import annotations

from repro.networks import (
    ProbabilisticCascadeModel,
    RandomFailure,
    SIRModel,
    TargetedDegreeAttack,
    barabasi_albert,
    critical_fraction,
    erdos_renyi,
    immunize,
    modular_graph,
    percolation_curve,
)


def main() -> None:
    n = 800
    ba = barabasi_albert(n, 2, seed=0)
    er = erdos_renyi(n, 2 * ba.n_edges / (n * (n - 1) / 2) / 2, seed=0)

    print("percolation: removed fraction at which the giant component "
          "falls below 5%")
    for graph_label, graph in (("scale-free", ba), ("random", er)):
        for attack_label, attack in (("random", RandomFailure()),
                                     ("targeted", TargetedDegreeAttack())):
            curve = percolation_curve(graph, attack, seed=1, resolution=50)
            print(f"  {graph_label:11s} under {attack_label:8s} attack: "
                  f"f_c = {critical_fraction(curve):.2f}")

    print("\nepidemics on the scale-free graph (SIR, beta=0.3, gamma=0.25):")
    for label, immune in (
        ("no immunization", frozenset()),
        ("random 10%", immunize(ba, 0.10, "random", seed=2)),
        ("targeted 10%", immunize(ba, 0.10, "targeted", seed=2)),
    ):
        model = SIRModel(ba, beta=0.3, gamma=0.25, immune=immune)
        seeds = [v for v in ba.nodes() if v not in immune][:3]
        result = model.run(seeds, seed=3)
        print(f"  {label:16s}: attack rate "
              f"{result.attack_rate(ba.n_nodes):.2f}")

    print("\ncascade containment (independent cascade, p=0.5):")
    monolith = modular_graph(1, 60, intra_p=0.12, bridges=0, seed=4)
    modular = modular_graph(5, 12, intra_p=0.6, bridges=1, seed=4)
    for label, graph in (("monolith", monolith), ("5 modules", modular)):
        model = ProbabilisticCascadeModel(graph, spread_p=0.5)
        print(f"  {label:10s}: mean damage "
              f"{model.mean_damage(trials=100, seed=5):.2f}")


if __name__ == "__main__":
    main()
