"""The evolutionary multi-agent testbed (paper §4.4).

Spends the same budget on redundancy, diversity, or adaptability and
runs digital-organism populations through two shock regimes, printing
the survival/fitness answer to the paper's tradeoff question.

Run:  python examples/digital_organisms.py
"""

from __future__ import annotations

import numpy as np

from repro.agents import (
    ConstraintEnvironment,
    EvolutionSimulator,
    ShockSchedule,
    seed_population,
)
from repro.core import Strategy, StrategyMix


def run(mix: StrategyMix, shocks: ShockSchedule, steps: int,
        trials: int = 5) -> tuple[float, float]:
    survived, fitness = 0, []
    for trial in range(trials):
        env = ConstraintEnvironment.random(24, tolerance=3, seed=500 + trial)
        population = seed_population(mix, env, n_agents=40, budget=400.0,
                                     seed=900 + trial)
        simulator = EvolutionSimulator(
            income_rate=1.0, living_cost=1.0, replication_threshold=15.0,
            mutation_rate=0.01, capacity=120,
        )
        result = simulator.run(population, env, steps=steps, shocks=shocks,
                               seed=trial)
        survived += result.survived
        fitness.append(float(result.mean_fitness.mean()))
    return survived / trials, float(np.mean(fitness))


def main() -> None:
    mixes = [
        ("pure redundancy  ", StrategyMix.pure(Strategy.REDUNDANCY)),
        ("pure diversity   ", StrategyMix.pure(Strategy.DIVERSITY)),
        ("pure adaptability", StrategyMix.pure(Strategy.ADAPTABILITY)),
        ("uniform mix      ", StrategyMix.uniform()),
    ]
    regimes = [
        ("frequent small shocks", ShockSchedule(period=12, severity=3), 150),
        ("rare violent storm   ",
         ShockSchedule(period=3, severity=14, first=60), 81),
    ]
    for regime_label, shocks, steps in regimes:
        print(f"\nregime: {regime_label}")
        for mix_label, mix in mixes:
            survival, fitness = run(mix, shocks, steps)
            print(f"  {mix_label}: survival {survival:.2f}, "
                  f"mean fitness {fitness:.3f}")
    print("\nThe optimum flips with the regime — the paper's §4.4 tradeoff.")


if __name__ == "__main__":
    main()
