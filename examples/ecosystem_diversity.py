"""Diversity as a resilience strategy (paper §3.2).

Demonstrates the diversity toolkit on an ecosystem scenario:

1. the paper's diversity index G and its extremes;
2. replicator dynamics driving domination without diminishing returns,
   and coexistence with them (Fig. 2's mechanism);
3. survival through environment regime shifts as a function of
   diversity — the Permian argument.

Run:  python examples/ecosystem_diversity.py
"""

from __future__ import annotations

import numpy as np

from repro.dynamics import (
    PowerDensityDependence,
    ReplicatorSystem,
    maruyama_diversity_index,
)


def main() -> None:
    # --- the index (§3.2.4) --------------------------------------------
    even = [10.0] * 6
    monopoly = [60.0] + [0.0] * 5
    print(f"G(even community)    = {maruyama_diversity_index(even):.5f}"
          f"  (= 1/p^2 = {1 / 10.0**2:.5f})")
    print(f"G(monopoly)          = {maruyama_diversity_index(monopoly):.5f}"
          f"  (= 1/(N p^2) = {1 / (6 * 10.0**2):.5f})")

    # --- replicator dynamics (§3.2.4) -----------------------------------
    fitness = [1.0, 1.05, 1.1, 1.2]
    raw = ReplicatorSystem(fitness)
    saturating = ReplicatorSystem(
        fitness, density=PowerDensityDependence(strength=2.0)
    )
    for label, system in (("raw replicator", raw),
                          ("diminishing-return", saturating)):
        traj = system.run([100.0] * 4, steps=400)
        print(f"\n{label}: dominant share "
              f"{traj.dominant_share()[-1]:.3f}, "
              f"surviving species {traj.surviving_species()}, "
              f"G = {traj.diversity_series()[-1]:.2e}")

    # --- regime-shift survival ------------------------------------------
    rng = np.random.default_rng(7)
    print("\nregime-shift roulette (trait-match survival, 200 episodes):")
    for n_species in (1, 2, 4, 8):
        survived = 0
        for _ in range(200):
            traits = rng.random(n_species)
            alive = np.ones(n_species, dtype=bool)
            for _ in range(3):  # three successive environment demands
                demand = rng.random()
                distance = np.minimum(np.abs(traits - demand),
                                      1 - np.abs(traits - demand))
                alive &= distance < 0.3
            survived += bool(alive.any())
        print(f"  {n_species} species: ecosystem survival "
              f"{survived / 200:.2f}")


if __name__ == "__main__":
    main()
